//! The live registry: per-PE metric shards plus per-PE event rings.
//!
//! This module is always compiled (so it is always tested); the
//! `telemetry` feature only controls whether the crate-root `Registry`
//! alias points here or at [`noop`](crate::noop). The two expose an
//! identical API, so instrumentation sites are written once.
//!
//! Sharding: every PE writes its own shard, so hot-path updates never
//! contend. Readers merge shards at snapshot time. PEs beyond the shard
//! count wrap around (`pe % shards`), which keeps `pe()` panic-free for
//! any input.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::heartbeat::Heartbeat;
use crate::ids::{CounterId, GaugeId, HistId, Phase};
use crate::metrics::{Counter, Gauge, HistSnapshot, Histogram, MetricsSnapshot, PeSnapshot};
use crate::ring::{Event, EventKind, EventRing};
use crate::sched::{PeSchedSnapshot, SchedState, StateClock};

/// Default per-PE event-ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// An opaque flow id travelling with an in-flight message in runtimes
/// that have no per-message sequence number of their own (the threaded
/// runtime). `0` is reserved for "no flow" ([`FlowTag::NONE`]); the noop
/// counterpart is zero-sized, so `(FlowTag, M)` adds nothing to a work
/// item in a default build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowTag(pub u64);

impl FlowTag {
    /// The "no flow" tag: carried by messages that are not stamped and
    /// ignored on delivery.
    pub const NONE: FlowTag = FlowTag(0);
}

/// The recording handle instrumented drivers beat their liveness pulse
/// through: a cloneable `Arc` around a concrete
/// [`Heartbeat`](crate::heartbeat::Heartbeat).
///
/// The noop counterpart is zero-sized, so a driver field holding one
/// costs nothing in a default build. An observer (the `dgr-observe`
/// watchdog) reads the shared concrete heartbeat from another thread.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatHandle(Arc<Heartbeat>);

impl HeartbeatHandle {
    /// A handle around a fresh heartbeat.
    pub fn new() -> Self {
        HeartbeatHandle::default()
    }

    /// Wraps an existing shared heartbeat (how an observability hub
    /// hands its pulse to a driver).
    pub fn from_shared(hb: Arc<Heartbeat>) -> Self {
        HeartbeatHandle(hb)
    }

    /// The shared concrete heartbeat behind this handle.
    pub fn shared(&self) -> Arc<Heartbeat> {
        Arc::clone(&self.0)
    }

    /// `true`: beats are recorded.
    pub fn enabled(&self) -> bool {
        true
    }

    /// Records that a marking phase of `cycle` entered force.
    pub fn begin_phase(&self, cycle: u32, phase: Phase) {
        self.0.begin_phase(cycle, phase);
    }

    /// Records that the current phase left force.
    pub fn end_phase(&self) {
        self.0.end_phase();
    }

    /// Records `n` more deliveries.
    pub fn progress(&self, n: u64) {
        self.0.progress(n);
    }

    /// Records a completed mark-and-restructure cycle.
    pub fn cycle_done(&self) {
        self.0.cycle_done();
    }
}

/// One PE's metrics and event ring.
#[derive(Debug)]
pub struct PeShard {
    counters: [Counter; CounterId::COUNT],
    gauges: [Gauge; GaugeId::COUNT],
    hists: [Histogram; HistId::COUNT],
    /// Uncontended in practice (each PE writes its own shard); a mutex
    /// keeps the API `&self` without unsafe.
    ring: Mutex<EventRing>,
    /// The PE's Lamport clock: ticked by flow sends, merged by flow
    /// receives.
    lamport: AtomicU64,
}

impl PeShard {
    fn new(ring_capacity: usize) -> Self {
        PeShard {
            counters: std::array::from_fn(|_| Counter::new()),
            gauges: std::array::from_fn(|_| Gauge::new()),
            hists: std::array::from_fn(|_| Histogram::new()),
            ring: Mutex::new(EventRing::new(ring_capacity)),
            lamport: AtomicU64::new(0),
        }
    }

    /// The PE's current Lamport clock.
    pub fn lamport(&self) -> u64 {
        self.lamport.load(Ordering::Relaxed)
    }

    /// Adds one to a counter.
    pub fn inc(&self, id: CounterId) {
        self.counters[id.index()].inc();
    }

    /// Adds `n` to a counter.
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id.index()].add(n);
    }

    /// Overwrites a gauge.
    pub fn gauge_set(&self, id: GaugeId, v: i64) {
        self.gauges[id.index()].set(v);
    }

    /// Raises a gauge to `v` if larger.
    pub fn gauge_max(&self, id: GaugeId, v: i64) {
        self.gauges[id.index()].raise(v);
    }

    /// Adds a (possibly negative) delta to a gauge, returning the new
    /// value — callers use it to feed a high-water gauge via
    /// [`gauge_max`](PeShard::gauge_max).
    pub fn gauge_add(&self, id: GaugeId, d: i64) -> i64 {
        let g = &self.gauges[id.index()];
        g.add(d);
        g.get()
    }

    /// Records a histogram observation.
    pub fn observe(&self, id: HistId, v: u64) {
        self.hists[id.index()].observe(v);
    }

    fn push_event(&self, e: Event) {
        self.ring.lock().expect("telemetry ring poisoned").push(e);
    }

    fn snapshot(&self) -> PeSnapshot {
        let counters = std::array::from_fn(|i| self.counters[i].get());
        let gauges = std::array::from_fn(|i| self.gauges[i].get());
        let hists: [HistSnapshot; HistId::COUNT] =
            std::array::from_fn(|i| self.hists[i].snapshot());
        PeSnapshot::from_parts(counters, gauges, hists)
    }
}

/// The metrics/tracing registry: per-PE shards behind a shared reference.
#[derive(Debug)]
pub struct Registry {
    shards: Box<[PeShard]>,
    /// Per-PE scheduler state clocks (one slot per shard).
    sched: StateClock,
    t0: Instant,
    /// Flow ids handed out by [`Registry::flow_send_tag`]; starts at 1 so
    /// 0 stays the [`FlowTag::NONE`] sentinel.
    next_flow: AtomicU64,
    /// Sender Lamport clock of every flow sent but not yet delivered —
    /// the receive side merges it and removes the entry, so what remains
    /// is exactly the in-flight set.
    flows: Mutex<HashMap<u64, u64>>,
}

impl Registry {
    /// A registry with one shard per PE and the default ring capacity.
    pub fn new(num_pes: u16) -> Self {
        Registry::with_capacity(num_pes, DEFAULT_RING_CAPACITY)
    }

    /// A registry with an explicit per-PE event-ring capacity.
    pub fn with_capacity(num_pes: u16, ring_capacity: usize) -> Self {
        let n = (num_pes as usize).max(1);
        Registry {
            shards: (0..n).map(|_| PeShard::new(ring_capacity)).collect(),
            sched: StateClock::new(n),
            t0: Instant::now(),
            next_flow: AtomicU64::new(1),
            flows: Mutex::new(HashMap::new()),
        }
    }

    /// `true`: this is the recording implementation.
    pub fn enabled(&self) -> bool {
        true
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard for a PE (wrapping beyond the shard count).
    pub fn pe(&self, pe: u16) -> &PeShard {
        &self.shards[pe as usize % self.shards.len()]
    }

    /// Microseconds since the registry was created.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// Transitions PE `pe`'s scheduler state clock into `state`. Entering
    /// the state already in force is free; see
    /// [`StateClock::enter`](crate::sched::StateClock::enter).
    pub fn sched_enter(&self, pe: u16, state: SchedState) {
        self.sched.enter(pe, state);
    }

    /// Closes PE `pe`'s state-clock episode, charging the in-force state
    /// up to now.
    pub fn sched_finish(&self, pe: u16) {
        self.sched.finish(pe);
    }

    /// The scheduler state currently in force on PE `pe`, if any.
    pub fn sched_current(&self, pe: u16) -> Option<SchedState> {
        self.sched.current(pe)
    }

    /// One PE's state-clock snapshot (also embedded per PE in
    /// [`Registry::snapshot`]).
    pub fn sched_snapshot(&self, pe: u16) -> PeSchedSnapshot {
        self.sched.snapshot_pe(pe)
    }

    fn event(
        &self,
        pe: u16,
        cycle: u32,
        phase: Phase,
        kind: EventKind,
        name: &'static str,
        value: u64,
    ) {
        self.pe(pe).push_event(Event {
            ts_us: self.now_us(),
            pe,
            cycle,
            phase,
            kind,
            name,
            value,
            lamport: 0,
        });
    }

    /// Opens a span.
    pub fn begin(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str) {
        self.event(pe, cycle, phase, EventKind::Begin, name, 0);
    }

    /// Closes a span.
    pub fn end(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str) {
        self.event(pe, cycle, phase, EventKind::End, name, 0);
    }

    /// Records a point event with a value payload.
    pub fn instant(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str, value: u64) {
        self.event(pe, cycle, phase, EventKind::Instant, name, value);
    }

    /// Opens a span closed automatically when the guard drops.
    pub fn span(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str) -> SpanGuard<'_> {
        self.begin(pe, cycle, phase, name);
        SpanGuard {
            reg: self,
            pe,
            cycle,
            phase,
            name,
        }
    }

    /// Records a message leaving PE `pe` under an externally chosen flow
    /// id (a simulator sequence number, say). Ticks the PE's Lamport
    /// clock and remembers it for the matching [`Registry::flow_recv`].
    pub fn flow_send(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str, flow: u64) {
        let shard = self.pe(pe);
        let lamport = shard.lamport.fetch_add(1, Ordering::Relaxed) + 1;
        self.flows
            .lock()
            .expect("telemetry flow map poisoned")
            .insert(flow, lamport);
        shard.push_event(Event {
            ts_us: self.now_us(),
            pe,
            cycle,
            phase,
            kind: EventKind::FlowSend,
            name,
            value: flow,
            lamport,
        });
    }

    /// Records the delivery of flow `flow` on PE `pe`, closing the
    /// happens-before edge: the receiver's Lamport clock becomes
    /// `max(local, sender) + 1`. Unknown flow ids (the send was recorded
    /// before the registry existed, or never) merge against 0.
    pub fn flow_recv(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str, flow: u64) {
        let sent = self
            .flows
            .lock()
            .expect("telemetry flow map poisoned")
            .remove(&flow)
            .unwrap_or(0);
        let shard = self.pe(pe);
        shard.lamport.fetch_max(sent, Ordering::Relaxed);
        let lamport = shard.lamport.fetch_add(1, Ordering::Relaxed) + 1;
        shard.push_event(Event {
            ts_us: self.now_us(),
            pe,
            cycle,
            phase,
            kind: EventKind::FlowRecv,
            name,
            value: flow,
            lamport,
        });
    }

    /// [`Registry::flow_send`] for runtimes without their own message
    /// sequence numbers: allocates a fresh flow id, records the send, and
    /// returns a [`FlowTag`] to travel with the message.
    pub fn flow_send_tag(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str) -> FlowTag {
        let flow = self.next_flow.fetch_add(1, Ordering::Relaxed);
        self.flow_send(pe, cycle, phase, name, flow);
        FlowTag(flow)
    }

    /// Resolves a [`FlowTag`] at delivery. [`FlowTag::NONE`] is ignored.
    pub fn flow_recv_tag(
        &self,
        pe: u16,
        cycle: u32,
        phase: Phase,
        name: &'static str,
        tag: FlowTag,
    ) {
        if tag != FlowTag::NONE {
            self.flow_recv(pe, cycle, phase, name, tag.0);
        }
    }

    /// Number of flows sent but not yet delivered.
    pub fn flows_in_flight(&self) -> usize {
        self.flows
            .lock()
            .expect("telemetry flow map poisoned")
            .len()
    }

    /// Copies every shard's metrics out, each with its PE's scheduler
    /// state clock attached.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            per_pe: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let mut snap = s.snapshot();
                    snap.set_sched(self.sched.snapshot_pe(i as u16));
                    snap
                })
                .collect(),
        }
    }

    /// Removes and returns all buffered events, stably sorted by
    /// timestamp (ties keep per-shard insertion order, so a single PE's
    /// begin/end nesting survives equal timestamps).
    pub fn drain_events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for s in self.shards.iter() {
            out.extend(s.ring.lock().expect("telemetry ring poisoned").drain());
        }
        out.sort_by_key(|e| e.ts_us);
        out
    }

    /// Total events lost to ring wraparound so far.
    pub fn dropped_events(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.ring.lock().expect("telemetry ring poisoned").dropped())
            .sum()
    }
}

/// Closes its span when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    reg: &'a Registry,
    pe: u16,
    cycle: u32,
    phase: Phase,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.reg.end(self.pe, self.cycle, self.phase, self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_wrap_and_merge() {
        let r = Registry::new(2);
        r.pe(0).inc(CounterId::Tasks);
        r.pe(1).add(CounterId::Tasks, 2);
        r.pe(2).add(CounterId::Tasks, 10); // wraps to shard 0
        let snap = r.snapshot();
        assert_eq!(snap.per_pe.len(), 2);
        assert_eq!(snap.per_pe[0].counter(CounterId::Tasks), 11);
        assert_eq!(snap.per_pe[1].counter(CounterId::Tasks), 2);
        assert_eq!(snap.merged().counter(CounterId::Tasks), 13);
        assert_eq!(snap.counter_total(CounterId::Tasks), 13);
    }

    #[test]
    fn zero_pes_still_gets_a_shard() {
        let r = Registry::new(0);
        r.pe(7).inc(CounterId::Parks);
        assert_eq!(r.snapshot().counter_total(CounterId::Parks), 1);
    }

    #[test]
    fn spans_nest_and_drain_ordered() {
        let r = Registry::new(1);
        {
            let _cycle = r.span(0, 1, Phase::Gc, "cycle");
            let _mr = r.span(0, 1, Phase::Mr, "M_R");
            r.instant(0, 1, Phase::Mr, "marked", 42);
        }
        let evs = r.drain_events();
        assert_eq!(evs.len(), 5);
        assert_eq!(
            evs.iter().map(|e| (e.kind, e.name)).collect::<Vec<_>>(),
            vec![
                (EventKind::Begin, "cycle"),
                (EventKind::Begin, "M_R"),
                (EventKind::Instant, "marked"),
                (EventKind::End, "M_R"),
                (EventKind::End, "cycle"),
            ],
            "LIFO guard drop closes inner span first"
        );
        assert!(evs.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert_eq!(evs[2].value, 42);
        assert!(r.drain_events().is_empty(), "drain clears");
    }

    #[test]
    fn flow_clocks_respect_happens_before() {
        let r = Registry::new(2);
        // PE 0 sends two flows; PE 1 receives them in order.
        let a = r.flow_send_tag(0, 1, Phase::Mr, "mark");
        let b = r.flow_send_tag(0, 1, Phase::Mr, "mark");
        assert_ne!(a, FlowTag::NONE);
        assert_ne!(a, b, "fresh ids per send");
        assert_eq!(r.flows_in_flight(), 2);
        r.flow_recv_tag(1, 1, Phase::Mr, "mark", a);
        r.flow_recv_tag(1, 1, Phase::Mr, "mark", b);
        r.flow_recv_tag(1, 1, Phase::Mr, "mark", FlowTag::NONE);
        assert_eq!(r.flows_in_flight(), 0);
        let evs = r.drain_events();
        assert_eq!(evs.len(), 4, "NONE tags record nothing");
        let sends: Vec<&Event> = evs
            .iter()
            .filter(|e| e.kind == EventKind::FlowSend)
            .collect();
        let recvs: Vec<&Event> = evs
            .iter()
            .filter(|e| e.kind == EventKind::FlowRecv)
            .collect();
        assert_eq!(sends.len(), 2);
        assert_eq!(recvs.len(), 2);
        for (s, r) in sends.iter().zip(recvs.iter()) {
            assert_eq!(s.value, r.value, "flow ids pair up");
            assert!(r.lamport > s.lamport, "delivery is after the send");
        }
    }

    #[test]
    fn flow_recv_merges_the_senders_clock() {
        let r = Registry::new(2);
        // Advance PE 0's clock well past PE 1's, then send 0 -> 1: the
        // receive must jump over the sender's clock, not just tick.
        for _ in 0..9 {
            let t = r.flow_send_tag(0, 0, Phase::Mr, "m");
            r.flow_recv_tag(0, 0, Phase::Mr, "m", t);
        }
        let t = r.flow_send_tag(0, 0, Phase::Mr, "m");
        r.flow_recv_tag(1, 0, Phase::Mr, "m", t);
        let evs = r.drain_events();
        let recv = evs.iter().rfind(|e| e.kind == EventKind::FlowRecv).unwrap();
        assert_eq!(recv.pe, 1);
        assert_eq!(recv.lamport, 20, "max(0, 19) + 1");
    }

    #[test]
    fn sched_clocks_ride_the_snapshot() {
        let r = Registry::new(2);
        r.sched_enter(1, SchedState::Work);
        assert_eq!(r.sched_current(1), Some(SchedState::Work));
        std::thread::sleep(std::time::Duration::from_millis(1));
        r.sched_enter(1, SchedState::Quiesce);
        r.sched_finish(1);
        assert_eq!(r.sched_current(1), None);
        let snap = r.snapshot();
        let sched = snap.per_pe[1].sched();
        assert!(sched.state_ns(SchedState::Work) >= 1_000_000);
        assert_eq!(sched.total_ns(), sched.span_ns);
        assert!(snap.per_pe[0].sched().is_empty(), "PE 0 never entered");
        // The merged view adds state times across PEs.
        assert_eq!(
            snap.merged().sched().state_ns(SchedState::Work),
            sched.state_ns(SchedState::Work)
        );
    }

    #[test]
    fn gauges_and_hists_reach_snapshots() {
        let r = Registry::new(1);
        r.pe(0).gauge_set(GaugeId::MailboxDepth, 3);
        r.pe(0).gauge_max(GaugeId::MailboxHighWater, 9);
        r.pe(0).gauge_max(GaugeId::MailboxHighWater, 4);
        r.pe(0).observe(HistId::BatchSize, 5);
        let m = r.snapshot().merged();
        assert_eq!(m.gauge(GaugeId::MailboxDepth), 3);
        assert_eq!(m.gauge(GaugeId::MailboxHighWater), 9);
        assert_eq!(m.hist(HistId::BatchSize).count, 1);
        assert_eq!(m.hist(HistId::BatchSize).sum, 5);
    }
}
