//! The live registry: per-PE metric shards plus per-PE event rings.
//!
//! This module is always compiled (so it is always tested); the
//! `telemetry` feature only controls whether the crate-root `Registry`
//! alias points here or at [`noop`](crate::noop). The two expose an
//! identical API, so instrumentation sites are written once.
//!
//! Sharding: every PE writes its own shard, so hot-path updates never
//! contend. Readers merge shards at snapshot time. PEs beyond the shard
//! count wrap around (`pe % shards`), which keeps `pe()` panic-free for
//! any input.

use std::sync::Mutex;
use std::time::Instant;

use crate::ids::{CounterId, GaugeId, HistId, Phase};
use crate::metrics::{Counter, Gauge, HistSnapshot, Histogram, MetricsSnapshot, PeSnapshot};
use crate::ring::{Event, EventKind, EventRing};

/// Default per-PE event-ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// One PE's metrics and event ring.
#[derive(Debug)]
pub struct PeShard {
    counters: [Counter; CounterId::COUNT],
    gauges: [Gauge; GaugeId::COUNT],
    hists: [Histogram; HistId::COUNT],
    /// Uncontended in practice (each PE writes its own shard); a mutex
    /// keeps the API `&self` without unsafe.
    ring: Mutex<EventRing>,
}

impl PeShard {
    fn new(ring_capacity: usize) -> Self {
        PeShard {
            counters: std::array::from_fn(|_| Counter::new()),
            gauges: std::array::from_fn(|_| Gauge::new()),
            hists: std::array::from_fn(|_| Histogram::new()),
            ring: Mutex::new(EventRing::new(ring_capacity)),
        }
    }

    /// Adds one to a counter.
    pub fn inc(&self, id: CounterId) {
        self.counters[id.index()].inc();
    }

    /// Adds `n` to a counter.
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id.index()].add(n);
    }

    /// Overwrites a gauge.
    pub fn gauge_set(&self, id: GaugeId, v: i64) {
        self.gauges[id.index()].set(v);
    }

    /// Raises a gauge to `v` if larger.
    pub fn gauge_max(&self, id: GaugeId, v: i64) {
        self.gauges[id.index()].raise(v);
    }

    /// Adds a (possibly negative) delta to a gauge, returning the new
    /// value — callers use it to feed a high-water gauge via
    /// [`gauge_max`](PeShard::gauge_max).
    pub fn gauge_add(&self, id: GaugeId, d: i64) -> i64 {
        let g = &self.gauges[id.index()];
        g.add(d);
        g.get()
    }

    /// Records a histogram observation.
    pub fn observe(&self, id: HistId, v: u64) {
        self.hists[id.index()].observe(v);
    }

    fn push_event(&self, e: Event) {
        self.ring.lock().expect("telemetry ring poisoned").push(e);
    }

    fn snapshot(&self) -> PeSnapshot {
        let counters = std::array::from_fn(|i| self.counters[i].get());
        let gauges = std::array::from_fn(|i| self.gauges[i].get());
        let hists: [HistSnapshot; HistId::COUNT] =
            std::array::from_fn(|i| self.hists[i].snapshot());
        PeSnapshot::from_parts(counters, gauges, hists)
    }
}

/// The metrics/tracing registry: per-PE shards behind a shared reference.
#[derive(Debug)]
pub struct Registry {
    shards: Box<[PeShard]>,
    t0: Instant,
}

impl Registry {
    /// A registry with one shard per PE and the default ring capacity.
    pub fn new(num_pes: u16) -> Self {
        Registry::with_capacity(num_pes, DEFAULT_RING_CAPACITY)
    }

    /// A registry with an explicit per-PE event-ring capacity.
    pub fn with_capacity(num_pes: u16, ring_capacity: usize) -> Self {
        let n = (num_pes as usize).max(1);
        Registry {
            shards: (0..n).map(|_| PeShard::new(ring_capacity)).collect(),
            t0: Instant::now(),
        }
    }

    /// `true`: this is the recording implementation.
    pub fn enabled(&self) -> bool {
        true
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard for a PE (wrapping beyond the shard count).
    pub fn pe(&self, pe: u16) -> &PeShard {
        &self.shards[pe as usize % self.shards.len()]
    }

    /// Microseconds since the registry was created.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    fn event(
        &self,
        pe: u16,
        cycle: u32,
        phase: Phase,
        kind: EventKind,
        name: &'static str,
        value: u64,
    ) {
        self.pe(pe).push_event(Event {
            ts_us: self.now_us(),
            pe,
            cycle,
            phase,
            kind,
            name,
            value,
        });
    }

    /// Opens a span.
    pub fn begin(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str) {
        self.event(pe, cycle, phase, EventKind::Begin, name, 0);
    }

    /// Closes a span.
    pub fn end(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str) {
        self.event(pe, cycle, phase, EventKind::End, name, 0);
    }

    /// Records a point event with a value payload.
    pub fn instant(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str, value: u64) {
        self.event(pe, cycle, phase, EventKind::Instant, name, value);
    }

    /// Opens a span closed automatically when the guard drops.
    pub fn span(&self, pe: u16, cycle: u32, phase: Phase, name: &'static str) -> SpanGuard<'_> {
        self.begin(pe, cycle, phase, name);
        SpanGuard {
            reg: self,
            pe,
            cycle,
            phase,
            name,
        }
    }

    /// Copies every shard's metrics out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            per_pe: self.shards.iter().map(|s| s.snapshot()).collect(),
        }
    }

    /// Removes and returns all buffered events, stably sorted by
    /// timestamp (ties keep per-shard insertion order, so a single PE's
    /// begin/end nesting survives equal timestamps).
    pub fn drain_events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for s in self.shards.iter() {
            out.extend(s.ring.lock().expect("telemetry ring poisoned").drain());
        }
        out.sort_by_key(|e| e.ts_us);
        out
    }

    /// Total events lost to ring wraparound so far.
    pub fn dropped_events(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.ring.lock().expect("telemetry ring poisoned").dropped())
            .sum()
    }
}

/// Closes its span when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    reg: &'a Registry,
    pe: u16,
    cycle: u32,
    phase: Phase,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.reg.end(self.pe, self.cycle, self.phase, self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_wrap_and_merge() {
        let r = Registry::new(2);
        r.pe(0).inc(CounterId::Tasks);
        r.pe(1).add(CounterId::Tasks, 2);
        r.pe(2).add(CounterId::Tasks, 10); // wraps to shard 0
        let snap = r.snapshot();
        assert_eq!(snap.per_pe.len(), 2);
        assert_eq!(snap.per_pe[0].counter(CounterId::Tasks), 11);
        assert_eq!(snap.per_pe[1].counter(CounterId::Tasks), 2);
        assert_eq!(snap.merged().counter(CounterId::Tasks), 13);
        assert_eq!(snap.counter_total(CounterId::Tasks), 13);
    }

    #[test]
    fn zero_pes_still_gets_a_shard() {
        let r = Registry::new(0);
        r.pe(7).inc(CounterId::Parks);
        assert_eq!(r.snapshot().counter_total(CounterId::Parks), 1);
    }

    #[test]
    fn spans_nest_and_drain_ordered() {
        let r = Registry::new(1);
        {
            let _cycle = r.span(0, 1, Phase::Gc, "cycle");
            let _mr = r.span(0, 1, Phase::Mr, "M_R");
            r.instant(0, 1, Phase::Mr, "marked", 42);
        }
        let evs = r.drain_events();
        assert_eq!(evs.len(), 5);
        assert_eq!(
            evs.iter().map(|e| (e.kind, e.name)).collect::<Vec<_>>(),
            vec![
                (EventKind::Begin, "cycle"),
                (EventKind::Begin, "M_R"),
                (EventKind::Instant, "marked"),
                (EventKind::End, "M_R"),
                (EventKind::End, "cycle"),
            ],
            "LIFO guard drop closes inner span first"
        );
        assert!(evs.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert_eq!(evs[2].value, 42);
        assert!(r.drain_events().is_empty(), "drain clears");
    }

    #[test]
    fn gauges_and_hists_reach_snapshots() {
        let r = Registry::new(1);
        r.pe(0).gauge_set(GaugeId::MailboxDepth, 3);
        r.pe(0).gauge_max(GaugeId::MailboxHighWater, 9);
        r.pe(0).gauge_max(GaugeId::MailboxHighWater, 4);
        r.pe(0).observe(HistId::BatchSize, 5);
        let m = r.snapshot().merged();
        assert_eq!(m.gauge(GaugeId::MailboxDepth), 3);
        assert_eq!(m.gauge(GaugeId::MailboxHighWater), 9);
        assert_eq!(m.hist(HistId::BatchSize).count, 1);
        assert_eq!(m.hist(HistId::BatchSize).sum, 5);
    }
}
