//! Liveness heartbeats: the shared pulse a watchdog reads to decide
//! whether the marking machinery is still making progress.
//!
//! A [`Heartbeat`] is a handful of relaxed atomics: the current GC cycle
//! and phase, a monotone delivery-progress counter, and coarse
//! timestamps. Instrumented drivers beat it from their hot loops through
//! the [`HeartbeatHandle`](crate::HeartbeatHandle) facade (zero-sized
//! no-op in a default build, an `Arc` of this type with the `telemetry`
//! feature on); an observer — `dgr-observe`'s watchdog — polls the
//! concrete type from another thread.
//!
//! Like [`metrics`](crate::metrics), this module is always compiled so
//! both feature states test the real implementation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::ids::Phase;

/// Sentinel phase code meaning "no phase in force" (idle).
const PHASE_IDLE: u64 = u64::MAX;

fn phase_code(p: Phase) -> u64 {
    match p {
        Phase::Mt => 0,
        Phase::Mr => 1,
        Phase::Classify => 2,
        Phase::Mutate => 3,
        Phase::Gc => 4,
    }
}

fn phase_from_code(c: u64) -> Option<Phase> {
    match c {
        0 => Some(Phase::Mt),
        1 => Some(Phase::Mr),
        2 => Some(Phase::Classify),
        3 => Some(Phase::Mutate),
        4 => Some(Phase::Gc),
        _ => None,
    }
}

/// The shared pulse: written by drivers, polled by a watchdog.
///
/// All writes are `Relaxed` — the fields are independent monotone
/// signals read after the fact, never used for synchronization.
#[derive(Debug)]
pub struct Heartbeat {
    t0: Instant,
    cycle: AtomicU64,
    phase: AtomicU64,
    phase_started_us: AtomicU64,
    progress: AtomicU64,
    cycles_done: AtomicU64,
    beats: AtomicU64,
    last_beat_us: AtomicU64,
}

impl Default for Heartbeat {
    fn default() -> Self {
        Heartbeat::new()
    }
}

impl Heartbeat {
    /// A fresh, idle heartbeat (its clock starts now).
    pub fn new() -> Self {
        Heartbeat {
            t0: Instant::now(),
            cycle: AtomicU64::new(0),
            phase: AtomicU64::new(PHASE_IDLE),
            phase_started_us: AtomicU64::new(0),
            progress: AtomicU64::new(0),
            cycles_done: AtomicU64::new(0),
            beats: AtomicU64::new(0),
            last_beat_us: AtomicU64::new(0),
        }
    }

    /// Microseconds since the heartbeat was created.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    fn beat(&self) {
        self.beats.fetch_add(1, Ordering::Relaxed);
        self.last_beat_us.store(self.now_us(), Ordering::Relaxed);
    }

    /// A marking phase of `cycle` entered force.
    pub fn begin_phase(&self, cycle: u32, phase: Phase) {
        self.cycle.store(u64::from(cycle), Ordering::Relaxed);
        self.phase.store(phase_code(phase), Ordering::Relaxed);
        self.phase_started_us
            .store(self.now_us(), Ordering::Relaxed);
        self.beat();
    }

    /// The current phase left force (back to idle).
    pub fn end_phase(&self) {
        self.phase.store(PHASE_IDLE, Ordering::Relaxed);
        self.beat();
    }

    /// `n` more deliveries (marking or reduction) were made — the
    /// monotone signal a watchdog compares against its deadline.
    pub fn progress(&self, n: u64) {
        self.progress.fetch_add(n, Ordering::Relaxed);
        self.last_beat_us.store(self.now_us(), Ordering::Relaxed);
    }

    /// A full mark-and-restructure cycle completed.
    pub fn cycle_done(&self) {
        self.cycles_done.fetch_add(1, Ordering::Relaxed);
        self.beat();
    }

    /// The cycle number most recently begun.
    pub fn cycle(&self) -> u32 {
        self.cycle.load(Ordering::Relaxed) as u32
    }

    /// The phase currently in force, `None` when idle.
    pub fn phase(&self) -> Option<Phase> {
        phase_from_code(self.phase.load(Ordering::Relaxed))
    }

    /// Microseconds the current phase has been in force (0 when idle).
    pub fn phase_age_us(&self) -> u64 {
        if self.phase().is_none() {
            0
        } else {
            self.now_us()
                .saturating_sub(self.phase_started_us.load(Ordering::Relaxed))
        }
    }

    /// Total deliveries reported so far.
    pub fn progress_total(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Completed cycles reported so far.
    pub fn cycles_done(&self) -> u64 {
        self.cycles_done.load(Ordering::Relaxed)
    }

    /// Total beats (phase transitions + cycle completions). Zero means
    /// no instrumented driver ever attached — a watchdog treats that as
    /// "nothing to supervise", not as a stall.
    pub fn beats(&self) -> u64 {
        self.beats.load(Ordering::Relaxed)
    }

    /// Microseconds (on this heartbeat's clock) of the most recent beat
    /// or progress report.
    pub fn last_beat_us(&self) -> u64 {
        self.last_beat_us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_codes_round_trip() {
        for p in [
            Phase::Mt,
            Phase::Mr,
            Phase::Classify,
            Phase::Mutate,
            Phase::Gc,
        ] {
            assert_eq!(phase_from_code(phase_code(p)), Some(p));
        }
        assert_eq!(phase_from_code(PHASE_IDLE), None);
    }

    #[test]
    fn beats_track_phase_lifecycle() {
        let hb = Heartbeat::new();
        assert_eq!(hb.beats(), 0);
        assert_eq!(hb.phase(), None);
        assert_eq!(hb.phase_age_us(), 0);
        hb.begin_phase(3, Phase::Mr);
        assert_eq!(hb.cycle(), 3);
        assert_eq!(hb.phase(), Some(Phase::Mr));
        hb.progress(5);
        hb.progress(2);
        assert_eq!(hb.progress_total(), 7);
        hb.end_phase();
        assert_eq!(hb.phase(), None);
        hb.cycle_done();
        assert_eq!(hb.cycles_done(), 1);
        assert_eq!(hb.beats(), 3, "begin + end + cycle_done");
        assert!(hb.last_beat_us() <= hb.now_us());
    }
}
