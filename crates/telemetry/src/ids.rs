//! Identifiers for the fixed metric set and the phase tags.
//!
//! The registry deliberately uses a closed enum of metrics instead of
//! string registration: a counter bump is then an array index plus one
//! relaxed atomic add, with no hashing or locking on the hot path, and a
//! snapshot is a plain array copy.

/// Phase tag attached to spans and instant events.
///
/// `Mt`/`Mr` are the paper's two marking processes; `Classify` covers the
/// restructuring work that reads the finished marks (GAR reclaim, IRR
/// expunge, re-laning, deadlock report); `Mutate` is reduction work
/// outside any marking phase; `Gc` tags whole-cycle bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The task-marking process `M_T`.
    Mt,
    /// The priority-marking process `M_R`.
    Mr,
    /// Restructuring: classification and the actions taken on it.
    Classify,
    /// Mutator / reduction activity outside a marking phase.
    Mutate,
    /// Whole-cycle bookkeeping (cycle spans, settle, aborts).
    Gc,
}

impl Phase {
    /// Stable display name (also the JSON value).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Mt => "M_T",
            Phase::Mr => "M_R",
            Phase::Classify => "classify",
            Phase::Mutate => "mutate",
            Phase::Gc => "gc",
        }
    }
}

/// The fixed set of counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterId {
    /// Messages handled by the threaded runtime (any kind).
    Tasks,
    /// Marking-lane deliveries (mark + return tasks).
    MarkEvents,
    /// Reduction-lane deliveries.
    RedEvents,
    /// Mutator-lane deliveries.
    MutEvents,
    /// Sends whose destination PE is the sending PE.
    SendsLocal,
    /// Sends that cross a PE boundary.
    SendsRemote,
    /// Cross-PE batches flushed by the threaded runtime.
    Batches,
    /// Times a threaded worker found its mailbox empty and parked.
    Parks,
    /// Garbage vertices reclaimed by restructuring.
    Reclaimed,
    /// Irrelevant tasks expunged by restructuring.
    Expunged,
    /// Pending tasks moved to a different priority lane.
    Relaned,
    /// Successful steal operations by the work-stealing runtime (each may
    /// transfer several tasks).
    Steals,
    /// Steal attempts that found the victim empty or lost the race.
    StealFails,
    /// Successful steal operations with **this PE as the victim** (the
    /// thief bumps the victim's shard — the per-victim steal outcome
    /// bucket).
    StolenFrom,
    /// Tasks taken from this PE's deque by thieves.
    StolenTasks,
    /// Failed steal attempts against this PE as the victim (empty deque
    /// or lost race).
    StealMisses,
}

impl CounterId {
    /// Number of counters.
    pub const COUNT: usize = 16;

    /// Every counter, in `index` order.
    pub const ALL: [CounterId; CounterId::COUNT] = [
        CounterId::Tasks,
        CounterId::MarkEvents,
        CounterId::RedEvents,
        CounterId::MutEvents,
        CounterId::SendsLocal,
        CounterId::SendsRemote,
        CounterId::Batches,
        CounterId::Parks,
        CounterId::Reclaimed,
        CounterId::Expunged,
        CounterId::Relaned,
        CounterId::Steals,
        CounterId::StealFails,
        CounterId::StolenFrom,
        CounterId::StolenTasks,
        CounterId::StealMisses,
    ];

    /// Dense index into shard/snapshot arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (also the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            CounterId::Tasks => "tasks",
            CounterId::MarkEvents => "mark_events",
            CounterId::RedEvents => "red_events",
            CounterId::MutEvents => "mut_events",
            CounterId::SendsLocal => "sends_local",
            CounterId::SendsRemote => "sends_remote",
            CounterId::Batches => "batches",
            CounterId::Parks => "parks",
            CounterId::Reclaimed => "reclaimed",
            CounterId::Expunged => "expunged",
            CounterId::Relaned => "relaned",
            CounterId::Steals => "steals",
            CounterId::StealFails => "steal_fails",
            CounterId::StolenFrom => "stolen_from",
            CounterId::StolenTasks => "stolen_tasks",
            CounterId::StealMisses => "steal_misses",
        }
    }
}

/// The fixed set of gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GaugeId {
    /// Pending messages in a PE's mailboxes right now.
    MailboxDepth,
    /// Largest mailbox depth observed (set with `gauge_max`).
    MailboxHighWater,
    /// Tasks in a PE's work-stealing deque right now.
    DequeDepth,
    /// Largest deque depth observed (set with `gauge_max`).
    DequeHighWater,
    /// Largest private spill-stack depth observed by a work-stealing
    /// worker (set with `gauge_max`).
    SpillHighWater,
}

impl GaugeId {
    /// Number of gauges.
    pub const COUNT: usize = 5;

    /// Every gauge, in `index` order.
    pub const ALL: [GaugeId; GaugeId::COUNT] = [
        GaugeId::MailboxDepth,
        GaugeId::MailboxHighWater,
        GaugeId::DequeDepth,
        GaugeId::DequeHighWater,
        GaugeId::SpillHighWater,
    ];

    /// Dense index into shard/snapshot arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (also the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::MailboxDepth => "mailbox_depth",
            GaugeId::MailboxHighWater => "mailbox_high_water",
            GaugeId::DequeDepth => "deque_depth",
            GaugeId::DequeHighWater => "deque_high_water",
            GaugeId::SpillHighWater => "spill_high_water",
        }
    }
}

/// The fixed set of histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistId {
    /// Messages per cross-PE batch in the threaded runtime.
    BatchSize,
    /// Wall microseconds per completed marking cycle.
    CycleUs,
    /// Tasks transferred per successful `steal_half`.
    StealBatch,
    /// Per-pass deque-depth high-water, one observation per worker per
    /// pass (the distribution of peak backlogs across PEs).
    DequeDepthPeak,
    /// Microseconds from a timed park to waking (timeout or unpark).
    ParkWakeUs,
}

impl HistId {
    /// Number of histograms.
    pub const COUNT: usize = 5;

    /// Every histogram, in `index` order.
    pub const ALL: [HistId; HistId::COUNT] = [
        HistId::BatchSize,
        HistId::CycleUs,
        HistId::StealBatch,
        HistId::DequeDepthPeak,
        HistId::ParkWakeUs,
    ];

    /// Dense index into shard/snapshot arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (also the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            HistId::BatchSize => "batch_size",
            HistId::CycleUs => "cycle_us",
            HistId::StealBatch => "steal_batch",
            HistId::DequeDepthPeak => "deque_depth_peak",
            HistId::ParkWakeUs => "park_wake_us",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in GaugeId::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        for (i, h) in HistId::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.extend(GaugeId::ALL.iter().map(|g| g.name()));
        names.extend(HistId::ALL.iter().map(|h| h.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
