//! The structured event ring buffer.
//!
//! Spans (begin/end pairs) and instant events land in a fixed-capacity
//! ring; when full, the oldest events are overwritten rather than
//! blocking or growing — tracing must never stall the runtime. Draining
//! returns events oldest-first and reports how many were lost.

use crate::ids::Phase;

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens.
    Begin,
    /// A span closes.
    End,
    /// A point event with a value payload.
    Instant,
    /// A message left its sender: the payload is the flow id and
    /// `lamport` the sender's clock after the send tick.
    FlowSend,
    /// A message reached its destination: the payload is the flow id
    /// sent earlier and `lamport` the receiver's merged clock — together
    /// with the matching [`EventKind::FlowSend`] this is one
    /// happens-before edge of the marking wave.
    FlowRecv,
}

impl EventKind {
    /// Stable name (also the JSON value).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
            EventKind::FlowSend => "flow_send",
            EventKind::FlowRecv => "flow_recv",
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the registry was created.
    pub ts_us: u64,
    /// The PE the event happened on.
    pub pe: u16,
    /// The marking cycle it belongs to (0 outside any cycle).
    pub cycle: u32,
    /// Phase tag.
    pub phase: Phase,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Event name (static so recording never allocates).
    pub name: &'static str,
    /// Payload: the value for instant events, the flow id for
    /// flow-send/flow-recv events, 0 for spans.
    pub value: u64,
    /// Lamport timestamp for flow events (0 for everything else):
    /// ticked on send, merged (`max(local, sender) + 1`) on delivery, so
    /// comparing two flow events' clocks respects happens-before.
    pub lamport: u64,
}

/// A fixed-capacity overwrite-oldest ring of [`Event`]s.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Index the next push writes to once the ring has wrapped.
    next: usize,
    dropped: u64,
}

impl EventRing {
    /// An empty ring holding at most `cap` events (at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            dropped: 0,
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn push(&mut self, e: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Removes and returns all events, oldest first.
    pub fn drain(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        // After wrapping, `next` points at the oldest event.
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        self.buf.clear();
        self.next = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> Event {
        Event {
            ts_us: ts,
            pe: 0,
            cycle: 0,
            phase: Phase::Gc,
            kind: EventKind::Instant,
            name: "t",
            value: ts,
            lamport: 0,
        }
    }

    #[test]
    fn drains_in_insertion_order() {
        let mut r = EventRing::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 5);
        let got: Vec<u64> = r.drain().iter().map(|e| e.ts_us).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let mut r = EventRing::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let got: Vec<u64> = r.drain().iter().map(|e| e.ts_us).collect();
        assert_eq!(got, vec![6, 7, 8, 9], "oldest-first after wrapping");
    }

    #[test]
    fn drain_resets_for_reuse() {
        let mut r = EventRing::new(2);
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(r.drain().len(), 2);
        r.push(ev(9));
        let got: Vec<u64> = r.drain().iter().map(|e| e.ts_us).collect();
        assert_eq!(got, vec![9]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.drain().len(), 1);
    }
}
