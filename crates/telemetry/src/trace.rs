//! Exporters for drained events: JSONL and Chrome `trace_event`.
//!
//! JSON is rendered by hand — the vendored `serde` is a no-op marker
//! stub, and the formats here are small and fixed. The Chrome format is
//! the "JSON Object Format" understood by `chrome://tracing` and Perfetto:
//! a `traceEvents` array of `B`/`E`/`i` records, with the PE mapped to
//! the thread id so each PE renders as one flame-graph track.

use crate::ring::{Event, EventKind};

/// Escapes a string for inclusion in a JSON string literal (shared by
/// every hand-rolled JSON renderer in the workspace, `dgr-observe`'s
/// `/status` endpoint included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as JSON Lines: one event object per line, in input
/// order.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"ts_us\": {}, \"pe\": {}, \"cycle\": {}, \"phase\": \"{}\", \
             \"kind\": \"{}\", \"name\": \"{}\", \"value\": {}, \"lamport\": {}}}\n",
            e.ts_us,
            e.pe,
            e.cycle,
            e.phase.name(),
            e.kind.name(),
            json_escape(e.name),
            e.value,
            e.lamport,
        ));
    }
    out
}

/// Renders events in Chrome `trace_event` JSON Object Format.
///
/// Events are stably sorted by timestamp (the loader requires
/// monotonically non-decreasing `ts` per track; stability preserves
/// begin/end nesting at equal timestamps). Spans become `B`/`E` pairs and
/// instants become `i` records scoped to their thread; `pid` is 0 and
/// `tid` is the PE id. Flow sends/receives become `s`/`f` flow events
/// keyed by flow id, all under the single category `flow` (Perfetto links
/// the two ends by `(cat, id)`, so both must use the same category even
/// when the send and delivery happened in different phases); the `f` end
/// carries `"bp": "e"` so the arrow binds to the enclosing slice.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts_us);
    let mut out = String::from("{\"traceEvents\": [\n");
    for (i, e) in sorted.iter().enumerate() {
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::FlowSend => "s",
            EventKind::FlowRecv => "f",
        };
        let extra = match e.kind {
            EventKind::Instant => ", \"s\": \"t\"".to_string(),
            EventKind::FlowSend => format!(", \"id\": {}", e.value),
            EventKind::FlowRecv => format!(", \"bp\": \"e\", \"id\": {}", e.value),
            _ => String::new(),
        };
        let cat = match e.kind {
            EventKind::FlowSend | EventKind::FlowRecv => "flow",
            _ => e.phase.name(),
        };
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {}, \
             \"pid\": 0, \"tid\": {}{}, \"args\": {{\"cycle\": {}, \"value\": {}}}}}{}\n",
            json_escape(e.name),
            cat,
            ph,
            e.ts_us,
            e.pe,
            extra,
            e.cycle,
            e.value,
            if i + 1 < sorted.len() { "," } else { "" },
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Phase;

    fn ev(ts: u64, pe: u16, kind: EventKind, name: &'static str) -> Event {
        Event {
            ts_us: ts,
            pe,
            cycle: 3,
            phase: Phase::Mr,
            kind,
            name,
            value: 5,
            lamport: 0,
        }
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let evs = [
            ev(1, 0, EventKind::Begin, "M_R"),
            ev(2, 0, EventKind::End, "M_R"),
        ];
        let s = events_jsonl(&evs);
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with(
            "{\"ts_us\": 1, \"pe\": 0, \"cycle\": 3, \"phase\": \"M_R\", \
             \"kind\": \"begin\", \"name\": \"M_R\", \"value\": 5, \"lamport\": 0}"
        ));
    }

    #[test]
    fn chrome_trace_links_flow_ends_by_id_under_one_category() {
        let mut send = ev(2, 0, EventKind::FlowSend, "M_R");
        send.value = 41;
        send.lamport = 1;
        let mut recv = ev(5, 1, EventKind::FlowRecv, "M_R");
        recv.value = 41;
        recv.lamport = 2;
        let s = chrome_trace_json(&[send, recv]);
        assert!(s.contains("\"cat\": \"flow\", \"ph\": \"s\""));
        assert!(s.contains("\"cat\": \"flow\", \"ph\": \"f\""));
        assert!(
            s.contains("\"bp\": \"e\", \"id\": 41"),
            "f end binds enclosing"
        );
        assert_eq!(s.matches("\"id\": 41").count(), 2, "both ends share the id");
        assert!(
            !s.contains("\"cat\": \"M_R\""),
            "flows never use the phase cat"
        );
    }

    #[test]
    fn chrome_trace_sorts_by_ts_and_scopes_instants() {
        let evs = [
            ev(9, 1, EventKind::Instant, "late"),
            ev(1, 0, EventKind::Begin, "span"),
            ev(4, 0, EventKind::End, "span"),
        ];
        let s = chrome_trace_json(&evs);
        let b = s.find("\"ph\": \"B\"").unwrap();
        let e = s.find("\"ph\": \"E\"").unwrap();
        let i = s.find("\"ph\": \"i\"").unwrap();
        assert!(b < e && e < i, "records ordered by ts");
        assert!(s.contains("\"s\": \"t\""), "instants carry a scope");
        assert!(s.contains("\"tid\": 1"), "pe becomes the thread id");
    }

    #[test]
    fn escaping_is_applied() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
