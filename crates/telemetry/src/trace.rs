//! Exporters for drained events: JSONL and Chrome `trace_event`.
//!
//! JSON is rendered by hand — the vendored `serde` is a no-op marker
//! stub, and the formats here are small and fixed. The Chrome format is
//! the "JSON Object Format" understood by `chrome://tracing` and Perfetto:
//! a `traceEvents` array of `B`/`E`/`i` records, with the PE mapped to
//! the thread id so each PE renders as one flame-graph track.

use crate::ring::{Event, EventKind};

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as JSON Lines: one event object per line, in input
/// order.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"ts_us\": {}, \"pe\": {}, \"cycle\": {}, \"phase\": \"{}\", \
             \"kind\": \"{}\", \"name\": \"{}\", \"value\": {}}}\n",
            e.ts_us,
            e.pe,
            e.cycle,
            e.phase.name(),
            e.kind.name(),
            json_escape(e.name),
            e.value,
        ));
    }
    out
}

/// Renders events in Chrome `trace_event` JSON Object Format.
///
/// Events are stably sorted by timestamp (the loader requires
/// monotonically non-decreasing `ts` per track; stability preserves
/// begin/end nesting at equal timestamps). Spans become `B`/`E` pairs and
/// instants become `i` records scoped to their thread; `pid` is 0 and
/// `tid` is the PE id.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts_us);
    let mut out = String::from("{\"traceEvents\": [\n");
    for (i, e) in sorted.iter().enumerate() {
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        let scope = if e.kind == EventKind::Instant {
            ", \"s\": \"t\""
        } else {
            ""
        };
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"ts\": {}, \
             \"pid\": 0, \"tid\": {}{}, \"args\": {{\"cycle\": {}, \"value\": {}}}}}{}\n",
            json_escape(e.name),
            e.phase.name(),
            ph,
            e.ts_us,
            e.pe,
            scope,
            e.cycle,
            e.value,
            if i + 1 < sorted.len() { "," } else { "" },
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Phase;

    fn ev(ts: u64, pe: u16, kind: EventKind, name: &'static str) -> Event {
        Event {
            ts_us: ts,
            pe,
            cycle: 3,
            phase: Phase::Mr,
            kind,
            name,
            value: 5,
        }
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let evs = [
            ev(1, 0, EventKind::Begin, "M_R"),
            ev(2, 0, EventKind::End, "M_R"),
        ];
        let s = events_jsonl(&evs);
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with(
            "{\"ts_us\": 1, \"pe\": 0, \"cycle\": 3, \"phase\": \"M_R\", \
             \"kind\": \"begin\", \"name\": \"M_R\", \"value\": 5}"
        ));
    }

    #[test]
    fn chrome_trace_sorts_by_ts_and_scopes_instants() {
        let evs = [
            ev(9, 1, EventKind::Instant, "late"),
            ev(1, 0, EventKind::Begin, "span"),
            ev(4, 0, EventKind::End, "span"),
        ];
        let s = chrome_trace_json(&evs);
        let b = s.find("\"ph\": \"B\"").unwrap();
        let e = s.find("\"ph\": \"E\"").unwrap();
        let i = s.find("\"ph\": \"i\"").unwrap();
        assert!(b < e && e < i, "records ordered by ts");
        assert!(s.contains("\"s\": \"t\""), "instants carry a scope");
        assert!(s.contains("\"tid\": 1"), "pe becomes the thread id");
    }

    #[test]
    fn escaping_is_applied() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
