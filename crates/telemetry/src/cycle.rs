//! Per-marking-cycle reports and the timeline renderers built on them.
//!
//! One [`CycleReport`] summarises a complete garbage-collection marking
//! cycle: which phases ran and for how long, how much marking traffic it
//! generated (local vs. remote), the mark-task backlog high-water mark,
//! per-priority marked counts, and what restructuring reclaimed. The GC
//! driver fills one in per cycle; renderers here turn a single report —
//! or a whole timeline of them — into plain text or JSON.

use crate::trace::json_escape;

/// Everything measured about one marking cycle.
///
/// Counter-derived fields (`mark_events`, `sends_local`, `sends_remote`,
/// `mark_backlog_hw`, …) are zero when the `telemetry` feature is off;
/// phase durations and census fields are always populated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleReport {
    /// Cycle number (1-based).
    pub cycle: u32,
    /// Whether the synchronous M_T phase ran in this cycle.
    pub ran_mt: bool,
    /// Whether the cycle was aborted before restructuring.
    pub aborted: bool,
    /// Wall-clock duration of the M_T phase, microseconds.
    pub mt_us: u64,
    /// Wall-clock duration of the concurrent M_R phase, microseconds.
    pub mr_us: u64,
    /// Wall-clock duration of the settle drive, microseconds.
    pub settle_us: u64,
    /// Wall-clock duration of restructuring (classify + reclaim), microseconds.
    pub restructure_us: u64,
    /// Total cycle duration, microseconds.
    pub total_us: u64,
    /// Marking events processed during the cycle.
    pub mark_events: u64,
    /// Reduction events that ran concurrently with M_R.
    pub red_events_during_marking: u64,
    /// Intra-PE sends during the cycle.
    pub sends_local: u64,
    /// Cross-PE sends during the cycle.
    pub sends_remote: u64,
    /// High-water mark of the marking-lane backlog during the cycle.
    pub mark_backlog_hw: u64,
    /// Tasks marked by M_T.
    pub marked_t: usize,
    /// Tasks marked by M_R, by priority (index 0 = priority 3 / vital,
    /// 1 = priority 2 / eager, 2 = priority 1 / reserve).
    pub marked_by_priority: [usize; 3],
    /// Garbage tasks found by the classification census (pre-reclaim).
    pub garbage: usize,
    /// Irrelevant tasks found by the census.
    pub irrelevant: usize,
    /// Deadlocked tasks reported by the census.
    pub deadlocked: usize,
    /// Tasks reclaimed from the garbage set.
    pub reclaimed: usize,
    /// Irrelevant tasks expunged.
    pub expunged: usize,
    /// Tasks moved to a different lane by re-laning.
    pub relaned: usize,
}

impl CycleReport {
    /// Total tasks marked by M_R across priorities.
    pub fn marked_r(&self) -> usize {
        self.marked_by_priority.iter().sum()
    }

    /// One-line plain-text rendering.
    pub fn render_text(&self) -> String {
        format!(
            "cycle {:>4} [{}{}] M_T {:>7}us  M_R {:>7}us  settle {:>7}us  restr {:>7}us  \
             marked {}+{} (p3/p2/p1 {}/{}/{})  msgs {}l/{}r  backlog^ {}  \
             gar {} irr {} dead {}  reclaimed {} expunged {} relaned {}",
            self.cycle,
            if self.ran_mt { "T" } else { "-" },
            if self.aborted { "!" } else { "R" },
            self.mt_us,
            self.mr_us,
            self.settle_us,
            self.restructure_us,
            self.marked_t,
            self.marked_r(),
            self.marked_by_priority[0],
            self.marked_by_priority[1],
            self.marked_by_priority[2],
            self.sends_local,
            self.sends_remote,
            self.mark_backlog_hw,
            self.garbage,
            self.irrelevant,
            self.deadlocked,
            self.reclaimed,
            self.expunged,
            self.relaned,
        )
    }

    /// Single JSON object rendering. The key set is stable — it is part
    /// of the format contract covered by golden tests.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"cycle\": {}, \"ran_mt\": {}, \"aborted\": {}, \
             \"mt_us\": {}, \"mr_us\": {}, \"settle_us\": {}, \"restructure_us\": {}, \
             \"total_us\": {}, \"mark_events\": {}, \"red_events_during_marking\": {}, \
             \"sends_local\": {}, \"sends_remote\": {}, \"mark_backlog_hw\": {}, \
             \"marked_t\": {}, \"marked_r\": {}, \"marked_by_priority\": [{}, {}, {}], \
             \"garbage\": {}, \"irrelevant\": {}, \"deadlocked\": {}, \
             \"reclaimed\": {}, \"expunged\": {}, \"relaned\": {}}}",
            self.cycle,
            self.ran_mt,
            self.aborted,
            self.mt_us,
            self.mr_us,
            self.settle_us,
            self.restructure_us,
            self.total_us,
            self.mark_events,
            self.red_events_during_marking,
            self.sends_local,
            self.sends_remote,
            self.mark_backlog_hw,
            self.marked_t,
            self.marked_r(),
            self.marked_by_priority[0],
            self.marked_by_priority[1],
            self.marked_by_priority[2],
            self.garbage,
            self.irrelevant,
            self.deadlocked,
            self.reclaimed,
            self.expunged,
            self.relaned,
        )
    }
}

/// Renders a timeline of cycle reports as a JSON array.
pub fn timeline_json(reports: &[CycleReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.render_json());
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders a timeline of cycle reports as a plain-text table, one cycle
/// per line, with a trailing aggregate line.
pub fn timeline_text(reports: &[CycleReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&r.render_text());
        out.push('\n');
    }
    let cycles = reports.len();
    let total_us: u64 = reports.iter().map(|r| r.total_us).sum();
    let marked: usize = reports.iter().map(|r| r.marked_t + r.marked_r()).sum();
    let reclaimed: usize = reports.iter().map(|r| r.reclaimed).sum();
    out.push_str(&format!(
        "total: {cycles} cycles, {total_us}us, {marked} marked, {reclaimed} reclaimed\n"
    ));
    out
}

/// Escapes a string for a hand-rolled JSON document (re-exported for
/// callers assembling reports into larger documents).
pub fn escape_json(s: &str) -> String {
    json_escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CycleReport {
        CycleReport {
            cycle: 2,
            ran_mt: true,
            aborted: false,
            mt_us: 10,
            mr_us: 200,
            settle_us: 5,
            restructure_us: 30,
            total_us: 245,
            mark_events: 40,
            red_events_during_marking: 12,
            sends_local: 30,
            sends_remote: 10,
            mark_backlog_hw: 6,
            marked_t: 3,
            marked_by_priority: [4, 2, 1],
            garbage: 5,
            irrelevant: 2,
            deadlocked: 1,
            reclaimed: 5,
            expunged: 2,
            relaned: 7,
        }
    }

    #[test]
    fn marked_r_sums_priorities() {
        assert_eq!(sample().marked_r(), 7);
    }

    #[test]
    fn text_rendering_mentions_the_load_bearing_numbers() {
        let s = sample().render_text();
        assert!(s.contains("cycle    2"));
        assert!(s.contains("marked 3+7"));
        assert!(s.contains("p3/p2/p1 4/2/1"));
        assert!(s.contains("30l/10r"));
    }

    #[test]
    fn json_rendering_is_stable() {
        let s = sample().render_json();
        for key in [
            "\"cycle\": 2",
            "\"ran_mt\": true",
            "\"aborted\": false",
            "\"mt_us\": 10",
            "\"mr_us\": 200",
            "\"settle_us\": 5",
            "\"restructure_us\": 30",
            "\"total_us\": 245",
            "\"mark_events\": 40",
            "\"red_events_during_marking\": 12",
            "\"sends_local\": 30",
            "\"sends_remote\": 10",
            "\"mark_backlog_hw\": 6",
            "\"marked_t\": 3",
            "\"marked_r\": 7",
            "\"marked_by_priority\": [4, 2, 1]",
            "\"garbage\": 5",
            "\"irrelevant\": 2",
            "\"deadlocked\": 1",
            "\"reclaimed\": 5",
            "\"expunged\": 2",
            "\"relaned\": 7",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }

    #[test]
    fn timeline_json_is_an_array() {
        let t = timeline_json(&[sample(), sample()]);
        assert!(t.starts_with("[\n"));
        assert!(t.ends_with("]\n"));
        assert_eq!(t.matches("\"cycle\": 2").count(), 2);
        assert_eq!(t.matches(",\n").count(), 1, "one separator for two items");
    }

    #[test]
    fn timeline_text_has_aggregate_line() {
        let t = timeline_text(&[sample(), sample()]);
        assert!(t.ends_with("total: 2 cycles, 490us, 20 marked, 10 reclaimed\n"));
    }
}
