//! Vertex-lifecycle accounting: reclamation latency, floating-garbage
//! census, and per-cycle message-complexity meters.
//!
//! A collector backend (the `gc::GcDriver` cycle loop or one of the
//! `dgr-baseline` collectors) drives a [`Tracker`] once per collection
//! cycle:
//!
//! 1. [`Tracker::begin_cycle`] opens cycle `c`;
//! 2. [`Tracker::garbage_vertex`] is called for every vertex the backend
//!    observes dead-but-unreclaimed this cycle (the *census*). The first
//!    such observation stamps the vertex's `unreachable` cycle; later
//!    ones age it (`age = c − unreachable`) into the float-age histogram;
//! 3. [`Tracker::reclaim_vertex`] is called when a vertex is actually
//!    freed. Its reclamation latency is `c − unreachable` — **exact**
//!    whenever the vertex carried a stamp (the ≥95 % exactness the bench
//!    harness asserts), and counted as inexact otherwise (a tracker
//!    attached mid-run sees reclaims of vertices it never censused);
//! 4. [`Tracker::meter_msgs`] charges the cycle's `M_T`/`M_R` sends and
//!    the paper's Section 4 message bound in the same units;
//! 5. [`Tracker::end_cycle`] closes the cycle, returning its
//!    [`CycleLifecycle`] record, and sweeps stamps that were *not*
//!    re-censused this cycle (a mutator resurrected the vertex — once it
//!    is reachable again its float episode is over).
//!
//! Latencies and float ages land in the same power-of-two buckets as
//! every other histogram in this crate ([`bucket_index`]), so the
//! Prometheus exporter and the offline analyzer share edge math.
//!
//! Like [`sched`](crate::sched), everything here is always compiled; the
//! `telemetry` feature only decides whether the `LifecycleTracker` alias
//! at the crate root names this [`Tracker`] or the zero-sized
//! [`noop::LifecycleTracker`](crate::noop::LifecycleTracker).

use crate::metrics::{bucket_index, HIST_BUCKETS};

/// One collection cycle's lifecycle ledger, as returned by
/// [`Tracker::end_cycle`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleLifecycle {
    /// The cycle number this record describes.
    pub cycle: u64,
    /// Vertices censused dead-but-unreclaimed this cycle (pre-reclaim).
    pub garbage: u64,
    /// Vertices reclaimed this cycle.
    pub reclaimed: u64,
    /// Of those, how many carried an exact latency stamp.
    pub exact: u64,
    /// Sum of the exact latencies (cycles) of this cycle's reclaims.
    pub latency_sum: u64,
    /// Still floating (stamped, unreclaimed) after this cycle's reclaim.
    pub float: u64,
    /// `M_T` messages charged to this cycle.
    pub msgs_mt: u64,
    /// `M_R` messages charged to this cycle.
    pub msgs_mr: u64,
    /// Section 4 message-bound units charged to this cycle (see
    /// [`LifecycleSnapshot::efficiency`]).
    pub bound: u64,
}

/// Cheap copyable totals of a [`Tracker`], suitable for publishing into
/// an `ObserveHub` once per cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LifecycleSnapshot {
    /// Reclamation-latency histogram (power-of-two buckets of cycles).
    pub latency: [u64; HIST_BUCKETS],
    /// Sum of all exact latencies observed.
    pub latency_sum: u64,
    /// Maximum exact latency observed.
    pub latency_max: u64,
    /// Total vertices reclaimed.
    pub reclaimed: u64,
    /// Reclaims that carried an exact latency stamp.
    pub exact: u64,
    /// Float-age histogram: one observation per (cycle × floating
    /// vertex), bucketed by the vertex's age at that census.
    pub float_age: [u64; HIST_BUCKETS],
    /// Vertices floating (dead, unreclaimed) after the last closed cycle.
    pub float_now: u64,
    /// Total `M_T` messages metered.
    pub msgs_mt: u64,
    /// Total `M_R` messages metered.
    pub msgs_mr: u64,
    /// Total Section 4 bound units metered.
    pub bound: u64,
    /// Closed cycles.
    pub cycles: u64,
}

impl LifecycleSnapshot {
    /// `true` if the tracker never closed a cycle or observed a vertex.
    pub fn is_empty(&self) -> bool {
        self.cycles == 0 && self.reclaimed == 0 && self.float_now == 0
    }

    /// Mean exact reclamation latency in cycles (0 when nothing exact).
    pub fn mean_latency(&self) -> f64 {
        if self.exact == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.exact as f64
        }
    }

    /// Fraction of reclaims with an exact latency (1 when none reclaimed).
    pub fn exact_fraction(&self) -> f64 {
        if self.reclaimed == 0 {
            1.0
        } else {
            self.exact as f64 / self.reclaimed as f64
        }
    }

    /// Messages per reclaimed vertex, split `(M_T, M_R)` (0 when nothing
    /// was reclaimed).
    pub fn msgs_per_reclaimed(&self) -> (f64, f64) {
        if self.reclaimed == 0 {
            (0.0, 0.0)
        } else {
            (
                self.msgs_mt as f64 / self.reclaimed as f64,
                self.msgs_mr as f64 / self.reclaimed as f64,
            )
        }
    }

    /// Observed messages over the Section 4 bound units metered alongside
    /// them — ≤ 1 means marking stayed within the paper's budget. 0 when
    /// no bound was metered.
    pub fn efficiency(&self) -> f64 {
        if self.bound == 0 {
            0.0
        } else {
            (self.msgs_mt + self.msgs_mr) as f64 / self.bound as f64
        }
    }

    /// Bucket-estimated latency quantile in cycles (same convention as
    /// [`HistSnapshot::quantile`](crate::HistSnapshot): the upper edge of
    /// the bucket holding the `q`-th observation, with the open-ended
    /// last bucket reporting the observed maximum).
    pub fn latency_quantile(&self, q: f64) -> u64 {
        quantile(&self.latency, self.exact, self.latency_max, q)
    }
}

/// Bucket-estimated quantile over a raw power-of-two bucket array
/// (shared with the [`heap`](crate::heap) snapshot).
pub(crate) fn quantile(buckets: &[u64; HIST_BUCKETS], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return if i == HIST_BUCKETS - 1 {
                max
            } else {
                crate::metrics::bucket_upper_edge(i)
            };
        }
    }
    max
}

/// Sentinel for "no stamp" in the per-vertex cycle arrays (stored values
/// are `cycle + 1`).
const UNSTAMPED: u64 = 0;

/// The recording vertex-lifecycle tracker (see the module docs for the
/// per-cycle protocol). Single-threaded by design: it is driven from the
/// collector's own restructure path, which already owns the graph.
#[derive(Debug, Default)]
pub struct Tracker {
    /// Per-vertex: cycle of first sight + 1 (birth stamp). Allocation is
    /// invisible to the GC plane, so "birth" is first observation.
    born: Vec<u64>,
    /// Per-vertex: cycle first censused garbage + 1.
    since: Vec<u64>,
    /// Per-vertex: last cycle censused garbage + 1 (resurrection sweep).
    seen: Vec<u64>,
    /// Indices currently stamped (compact sweep/offender list).
    floating: Vec<u32>,
    /// The open cycle's ledger.
    cur: CycleLifecycle,
    /// Whether a cycle is open.
    open: bool,
    /// Running totals.
    snap: LifecycleSnapshot,
}

impl Tracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Tracker::default()
    }

    /// `true`: this is the recording implementation.
    #[inline(always)]
    pub const fn enabled(&self) -> bool {
        true
    }

    fn slot(v: &mut Vec<u64>, idx: usize) -> &mut u64 {
        if idx >= v.len() {
            v.resize(idx + 1, UNSTAMPED);
        }
        &mut v[idx]
    }

    /// Opens cycle `cycle`, resetting the per-cycle ledger.
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cur = CycleLifecycle {
            cycle,
            ..Default::default()
        };
        self.open = true;
    }

    /// Stamps a vertex's birth (first sight) and, if it had been censused
    /// garbage, clears the stamp — a reachable vertex is not floating.
    pub fn observe_alive(&mut self, idx: usize) {
        let cycle = self.cur.cycle;
        let born = Self::slot(&mut self.born, idx);
        if *born == UNSTAMPED {
            *born = cycle + 1;
        }
        if idx < self.since.len() && self.since[idx] != UNSTAMPED {
            self.since[idx] = UNSTAMPED;
            self.seen[idx] = UNSTAMPED;
            self.floating.retain(|&f| f as usize != idx);
        }
    }

    /// Censuses a vertex as dead-but-unreclaimed this cycle. First sight
    /// stamps its `unreachable` cycle; every sight ages it into the
    /// float-age histogram. Idempotent within a cycle.
    pub fn garbage_vertex(&mut self, idx: usize) {
        debug_assert!(self.open, "census outside begin_cycle/end_cycle");
        let cycle = self.cur.cycle;
        let born = Self::slot(&mut self.born, idx);
        if *born == UNSTAMPED {
            *born = cycle + 1;
        }
        let seen = Self::slot(&mut self.seen, idx);
        if *seen == cycle + 1 {
            return; // already censused this cycle
        }
        *seen = cycle + 1;
        let since = Self::slot(&mut self.since, idx);
        let age = if *since == UNSTAMPED {
            *since = cycle + 1;
            self.floating.push(idx as u32);
            0
        } else {
            cycle - (*since - 1)
        };
        self.cur.garbage += 1;
        self.snap.float_age[bucket_index(age)] += 1;
    }

    /// Records a vertex's reclamation. With a stamp, the latency
    /// `cycle − unreachable` is exact and histogrammed; without one, the
    /// reclaim is counted but its latency is unknown (inexact).
    pub fn reclaim_vertex(&mut self, idx: usize) {
        debug_assert!(self.open, "reclaim outside begin_cycle/end_cycle");
        let cycle = self.cur.cycle;
        self.cur.reclaimed += 1;
        self.snap.reclaimed += 1;
        let since = Self::slot(&mut self.since, idx);
        if *since == UNSTAMPED {
            return; // never censused: latency unknown
        }
        let latency = cycle - (*since - 1);
        *since = UNSTAMPED;
        self.seen[idx] = UNSTAMPED;
        self.floating.retain(|&f| f as usize != idx);
        self.cur.exact += 1;
        self.cur.latency_sum += latency;
        self.snap.exact += 1;
        self.snap.latency_sum += latency;
        self.snap.latency_max = self.snap.latency_max.max(latency);
        self.snap.latency[bucket_index(latency)] += 1;
    }

    /// Charges this cycle's `M_T`/`M_R` sends and the Section 4 bound
    /// units they are compared against. Additive within a cycle.
    pub fn meter_msgs(&mut self, mt: u64, mr: u64, bound: u64) {
        self.cur.msgs_mt += mt;
        self.cur.msgs_mr += mr;
        self.cur.bound += bound;
    }

    /// Closes the cycle: sweeps stamps that were not re-censused (the
    /// vertex was resurrected or silently freed — its float episode is
    /// over), fixes the cycle's float count, folds the ledger into the
    /// running totals and returns it.
    pub fn end_cycle(&mut self) -> CycleLifecycle {
        let cycle = self.cur.cycle;
        let since = &mut self.since;
        let seen = &mut self.seen;
        self.floating.retain(|&f| {
            let idx = f as usize;
            if seen[idx] == cycle + 1 {
                true
            } else {
                since[idx] = UNSTAMPED;
                seen[idx] = UNSTAMPED;
                false
            }
        });
        self.cur.float = self.floating.len() as u64;
        self.snap.float_now = self.cur.float;
        self.snap.msgs_mt += self.cur.msgs_mt;
        self.snap.msgs_mr += self.cur.msgs_mr;
        self.snap.bound += self.cur.bound;
        self.snap.cycles += 1;
        self.open = false;
        self.cur
    }

    /// Running totals (valid between cycles; mid-cycle the open ledger is
    /// not yet folded in).
    pub fn snapshot(&self) -> LifecycleSnapshot {
        self.snap.clone()
    }

    /// The `k` longest-floating vertices as `(index, age)` pairs, oldest
    /// first. Ages are relative to the last opened cycle.
    pub fn worst_floaters(&self, k: usize) -> Vec<(u32, u64)> {
        let cycle = self.cur.cycle;
        let mut out: Vec<(u32, u64)> = self
            .floating
            .iter()
            .map(|&f| (f, cycle - (self.since[f as usize] - 1)))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// The cycle a vertex was first censused garbage, if it is currently
    /// floating.
    pub fn unreachable_cycle(&self, idx: usize) -> Option<u64> {
        match self.since.get(idx) {
            Some(&s) if s != UNSTAMPED => Some(s - 1),
            _ => None,
        }
    }

    /// The cycle a vertex was first observed, if ever.
    pub fn birth_cycle(&self, idx: usize) -> Option<u64> {
        match self.born.get(idx) {
            Some(&b) if b != UNSTAMPED => Some(b - 1),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_cycle_reclaim_has_zero_exact_latency() {
        let mut t = Tracker::new();
        t.begin_cycle(1);
        t.garbage_vertex(3);
        t.reclaim_vertex(3);
        let rec = t.end_cycle();
        assert_eq!(rec.garbage, 1);
        assert_eq!(rec.reclaimed, 1);
        assert_eq!(rec.exact, 1);
        assert_eq!(rec.latency_sum, 0);
        assert_eq!(rec.float, 0);
        let s = t.snapshot();
        assert_eq!(s.latency[bucket_index(0)], 1);
        assert_eq!(s.exact_fraction(), 1.0);
        assert_eq!(s.mean_latency(), 0.0);
    }

    #[test]
    fn latency_is_cycles_floated_and_float_ages_accumulate() {
        let mut t = Tracker::new();
        for c in 1..=4 {
            t.begin_cycle(c);
            t.garbage_vertex(7);
            if c == 4 {
                t.reclaim_vertex(7);
            }
            let rec = t.end_cycle();
            if c < 4 {
                assert_eq!(rec.float, 1, "floats until reclaimed");
            } else {
                assert_eq!(rec.float, 0);
                assert_eq!(rec.latency_sum, 3, "stamped cycle 1, freed cycle 4");
            }
        }
        let s = t.snapshot();
        assert_eq!(s.reclaimed, 1);
        assert_eq!(s.exact, 1);
        assert_eq!(s.latency_max, 3);
        // Census ages: 0, 1, 2, 3 — one observation per floating cycle.
        let total: u64 = s.float_age.iter().sum();
        assert_eq!(total, 4);
        assert_eq!(s.float_age[bucket_index(0)], 1, "age 0 at first census");
        assert_eq!(s.float_age[2], 2, "ages 2 and 3 share bucket 2");
        assert_eq!(s.latency_quantile(0.5), 3);
        assert_eq!(t.unreachable_cycle(7), None, "stamp cleared on reclaim");
        assert_eq!(t.birth_cycle(7), Some(1));
    }

    #[test]
    fn unstamped_reclaim_is_counted_but_inexact() {
        let mut t = Tracker::new();
        t.begin_cycle(5);
        t.reclaim_vertex(2);
        let rec = t.end_cycle();
        assert_eq!(rec.reclaimed, 1);
        assert_eq!(rec.exact, 0);
        let s = t.snapshot();
        assert_eq!(s.exact_fraction(), 0.0);
        assert_eq!(s.latency.iter().sum::<u64>(), 0, "no latency histogrammed");
    }

    #[test]
    fn resurrection_sweeps_the_stamp() {
        let mut t = Tracker::new();
        t.begin_cycle(1);
        t.garbage_vertex(9);
        assert_eq!(t.end_cycle().float, 1);
        // Cycle 2 does not re-censure 9 (a mutator re-attached it).
        t.begin_cycle(2);
        assert_eq!(t.end_cycle().float, 0, "swept");
        // It dies again in cycle 5 and is freed in cycle 6: the new
        // episode's latency is 1, not 5.
        t.begin_cycle(5);
        t.garbage_vertex(9);
        t.end_cycle();
        t.begin_cycle(6);
        t.garbage_vertex(9);
        t.reclaim_vertex(9);
        let rec = t.end_cycle();
        assert_eq!(rec.latency_sum, 1);
    }

    #[test]
    fn observe_alive_clears_a_stamp_immediately() {
        let mut t = Tracker::new();
        t.begin_cycle(1);
        t.garbage_vertex(4);
        t.end_cycle();
        t.begin_cycle(2);
        t.observe_alive(4);
        assert_eq!(t.end_cycle().float, 0);
        assert_eq!(t.unreachable_cycle(4), None);
        assert_eq!(t.birth_cycle(4), Some(1), "birth survives resurrection");
    }

    #[test]
    fn census_is_idempotent_within_a_cycle() {
        let mut t = Tracker::new();
        t.begin_cycle(3);
        t.garbage_vertex(1);
        t.garbage_vertex(1);
        let rec = t.end_cycle();
        assert_eq!(rec.garbage, 1);
        assert_eq!(t.snapshot().float_age.iter().sum::<u64>(), 1);
    }

    #[test]
    fn worst_floaters_are_oldest_first_and_bounded() {
        let mut t = Tracker::new();
        t.begin_cycle(1);
        t.garbage_vertex(10);
        t.end_cycle();
        t.begin_cycle(3);
        t.garbage_vertex(10);
        t.garbage_vertex(20);
        t.garbage_vertex(30);
        t.end_cycle();
        t.begin_cycle(4);
        for i in [10, 20, 30] {
            t.garbage_vertex(i);
        }
        let worst = t.worst_floaters(2);
        assert_eq!(worst, vec![(10, 3), (20, 1)]);
        t.end_cycle();
    }

    #[test]
    fn message_meters_and_efficiency() {
        let mut t = Tracker::new();
        t.begin_cycle(1);
        t.garbage_vertex(0);
        t.reclaim_vertex(0);
        t.meter_msgs(4, 6, 0);
        t.meter_msgs(0, 0, 20);
        let rec = t.end_cycle();
        assert_eq!((rec.msgs_mt, rec.msgs_mr, rec.bound), (4, 6, 20));
        let s = t.snapshot();
        assert_eq!(s.msgs_per_reclaimed(), (4.0, 6.0));
        assert_eq!(s.efficiency(), 0.5);
    }

    #[test]
    fn empty_snapshot_is_empty_and_safe() {
        let s = LifecycleSnapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.exact_fraction(), 1.0);
        assert_eq!(s.msgs_per_reclaimed(), (0.0, 0.0));
        assert_eq!(s.efficiency(), 0.0);
        assert_eq!(s.latency_quantile(0.99), 0);
    }
}
