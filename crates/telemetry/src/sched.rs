//! Per-PE scheduler **state clocks**: monotone nanosecond accounting of
//! what each worker thread is doing at every instant of a pass.
//!
//! The work-stealing runtime's worker loop is a small closed state
//! machine — run local work, drain the mailbox mesh, search for a steal
//! victim, spin / yield / park when idle, quiesce. [`SchedState`] names
//! those states; a [`StateClock`] gives every PE one slot that charges
//! wall-clock nanoseconds to exactly one state at a time.
//!
//! The accounting identity the blame report is built on: for a
//! well-formed episode (one `enter` before any other call, `finish` at
//! the end, all calls from the owning worker thread),
//!
//! ```text
//! Σ_state ns[state]  ==  last_transition − first_enter
//! ```
//!
//! **exactly** — every elapsed nanosecond between the first `enter` and
//! `finish` lands in precisely one bucket, because a transition closes
//! the old bucket and opens the new one at the same instant. A pass
//! therefore accounts for 100% of each worker's measured wall-clock by
//! construction; the tolerance in the proptests only covers the
//! thread-spawn/join skirts *outside* the episode.
//!
//! Like the rest of the metric layer, slots are relaxed atomics: each PE
//! writes only its own slot, observers snapshot from other threads and
//! read monotone tallies after the fact. This module is always compiled;
//! the `telemetry` feature only decides whether the crate-root
//! [`Registry`](crate::Registry) facade routes `sched_enter` /
//! `sched_finish` here or to the empty-bodied no-op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// What a scheduler worker is doing right now. Closed enum — the blame
/// report and the Prometheus exporter both enumerate [`SchedState::ALL`],
/// so adding a state extends every consumer by compile error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedState {
    /// Executing tasks (local deque pops, spill pops, task chains).
    Work,
    /// Picking a victim and attempting `steal_half`.
    StealSearch,
    /// Idle busy-spin (first backoff tier).
    Spin,
    /// Idle `yield_now` (second backoff tier).
    Yield,
    /// Parked on the timeout futex (third backoff tier).
    Park,
    /// Draining / staging the cross-PE mailbox mesh and flushing held
    /// releases.
    MailboxDrain,
    /// Termination detected; winding the worker down.
    Quiesce,
}

impl SchedState {
    /// Number of states.
    pub const COUNT: usize = 7;

    /// Every state, in `index` order.
    pub const ALL: [SchedState; SchedState::COUNT] = [
        SchedState::Work,
        SchedState::StealSearch,
        SchedState::Spin,
        SchedState::Yield,
        SchedState::Park,
        SchedState::MailboxDrain,
        SchedState::Quiesce,
    ];

    /// Dense index into clock/snapshot arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The state at a dense index, if in range.
    pub fn from_index(i: usize) -> Option<SchedState> {
        SchedState::ALL.get(i).copied()
    }

    /// Stable snake_case name (also the JSON value and the Prometheus
    /// `state` label).
    pub fn name(self) -> &'static str {
        match self {
            SchedState::Work => "work",
            SchedState::StealSearch => "steal_search",
            SchedState::Spin => "spin",
            SchedState::Yield => "yield",
            SchedState::Park => "park",
            SchedState::MailboxDrain => "mailbox_drain",
            SchedState::Quiesce => "quiesce",
        }
    }

    /// The instant-event name carrying this state's nanosecond total in
    /// an events JSONL dump — what `dgr-trace blame` parses.
    pub fn event_name(self) -> &'static str {
        match self {
            SchedState::Work => "sched_work",
            SchedState::StealSearch => "sched_steal_search",
            SchedState::Spin => "sched_spin",
            SchedState::Yield => "sched_yield",
            SchedState::Park => "sched_park",
            SchedState::MailboxDrain => "sched_mailbox_drain",
            SchedState::Quiesce => "sched_quiesce",
        }
    }

    /// Recovers a state from its [`event_name`](SchedState::event_name).
    pub fn from_event_name(name: &str) -> Option<SchedState> {
        SchedState::ALL
            .iter()
            .copied()
            .find(|s| s.event_name() == name)
    }
}

/// "No state in force" sentinel for a slot's `current` cell.
const NO_STATE: u64 = u64::MAX;

/// "Never entered" sentinel for a slot's `first_ns` cell.
const NEVER: u64 = u64::MAX;

/// One PE's clock slot. Written only by the owning worker; read by
/// snapshot observers.
#[derive(Debug)]
struct SchedSlot {
    /// Nanoseconds charged to each state so far.
    ns: [AtomicU64; SchedState::COUNT],
    /// Dense index of the state in force, or [`NO_STATE`].
    current: AtomicU64,
    /// Clock reading (ns since the clock's epoch) of the last transition.
    entered_ns: AtomicU64,
    /// Clock reading of the first `enter` ever, or [`NEVER`].
    first_ns: AtomicU64,
    /// Clock reading of the last `finish`.
    last_ns: AtomicU64,
}

impl SchedSlot {
    fn new() -> Self {
        SchedSlot {
            ns: std::array::from_fn(|_| AtomicU64::new(0)),
            current: AtomicU64::new(NO_STATE),
            entered_ns: AtomicU64::new(0),
            first_ns: AtomicU64::new(NEVER),
            last_ns: AtomicU64::new(0),
        }
    }
}

/// Per-PE scheduler state clocks sharing one monotonic epoch.
#[derive(Debug)]
pub struct StateClock {
    t0: Instant,
    slots: Box<[SchedSlot]>,
}

impl StateClock {
    /// A clock with one slot per PE (at least one; PEs beyond the slot
    /// count wrap, mirroring the registry's shard addressing).
    pub fn new(num_pes: usize) -> Self {
        StateClock {
            t0: Instant::now(),
            slots: (0..num_pes.max(1)).map(|_| SchedSlot::new()).collect(),
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    fn slot(&self, pe: u16) -> &SchedSlot {
        &self.slots[pe as usize % self.slots.len()]
    }

    /// Transitions PE `pe` into `state`, charging the time since the
    /// previous transition to the state that was in force. Entering the
    /// state already in force is free (no clock read, no charge) — hot
    /// loops call this unconditionally on every iteration.
    pub fn enter(&self, pe: u16, state: SchedState) {
        let slot = self.slot(pe);
        let cur = slot.current.load(Ordering::Relaxed);
        if cur == state.index() as u64 {
            return;
        }
        let now = self.now_ns();
        if cur == NO_STATE {
            slot.first_ns.fetch_min(now, Ordering::Relaxed);
        } else {
            let entered = slot.entered_ns.load(Ordering::Relaxed);
            slot.ns[cur as usize].fetch_add(now.saturating_sub(entered), Ordering::Relaxed);
        }
        slot.entered_ns.store(now, Ordering::Relaxed);
        slot.current.store(state.index() as u64, Ordering::Relaxed);
    }

    /// Closes PE `pe`'s episode: charges the in-force state up to now and
    /// clears it. Idempotent (a second `finish` is a no-op).
    pub fn finish(&self, pe: u16) {
        let slot = self.slot(pe);
        let cur = slot.current.swap(NO_STATE, Ordering::Relaxed);
        if cur == NO_STATE {
            return;
        }
        let now = self.now_ns();
        let entered = slot.entered_ns.load(Ordering::Relaxed);
        slot.ns[cur as usize].fetch_add(now.saturating_sub(entered), Ordering::Relaxed);
        slot.last_ns.fetch_max(now, Ordering::Relaxed);
    }

    /// The state currently in force on PE `pe`, if any.
    pub fn current(&self, pe: u16) -> Option<SchedState> {
        match self.slot(pe).current.load(Ordering::Relaxed) {
            NO_STATE => None,
            i => SchedState::from_index(i as usize),
        }
    }

    /// Copies one PE's clock out. Mid-episode, the in-force state is
    /// virtually charged up to now, so snapshots taken while the worker
    /// runs still satisfy `Σ ns ≈ span_ns` (exactly, once finished).
    pub fn snapshot_pe(&self, pe: u16) -> PeSchedSnapshot {
        let slot = self.slot(pe);
        let mut ns = [0u64; SchedState::COUNT];
        for (i, cell) in slot.ns.iter().enumerate() {
            ns[i] = cell.load(Ordering::Relaxed);
        }
        let first = slot.first_ns.load(Ordering::Relaxed);
        let cur = slot.current.load(Ordering::Relaxed);
        let current = if cur == NO_STATE {
            None
        } else {
            SchedState::from_index(cur as usize)
        };
        let span_ns = if first == NEVER {
            0
        } else if let Some(state) = current {
            // Still running: charge the open state up to now.
            let now = self.now_ns();
            let entered = slot.entered_ns.load(Ordering::Relaxed);
            ns[state.index()] += now.saturating_sub(entered);
            now.saturating_sub(first)
        } else {
            slot.last_ns.load(Ordering::Relaxed).saturating_sub(first)
        };
        PeSchedSnapshot {
            ns,
            current,
            span_ns,
        }
    }
}

/// A point-in-time copy of one PE's state clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeSchedSnapshot {
    /// Nanoseconds charged to each state, indexed by
    /// [`SchedState::index`].
    pub ns: [u64; SchedState::COUNT],
    /// The state in force when the snapshot was taken, if any.
    pub current: Option<SchedState>,
    /// Wall nanoseconds from the first `enter` to the last transition
    /// (or to the snapshot instant while running). Equals
    /// [`total_ns`](PeSchedSnapshot::total_ns) exactly once finished.
    pub span_ns: u64,
}

impl Default for PeSchedSnapshot {
    fn default() -> Self {
        PeSchedSnapshot {
            ns: [0; SchedState::COUNT],
            current: None,
            span_ns: 0,
        }
    }
}

impl PeSchedSnapshot {
    /// Nanoseconds charged to one state.
    pub fn state_ns(&self, state: SchedState) -> u64 {
        self.ns[state.index()]
    }

    /// Sum over all states.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Fraction of accounted time spent in [`SchedState::Work`]
    /// (0.0 when nothing was recorded).
    pub fn utilization(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.state_ns(SchedState::Work) as f64 / total as f64
        }
    }

    /// `true` when no time was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.total_ns() == 0 && self.current.is_none()
    }

    /// Folds another PE's clock into this one: state times add, spans
    /// take the maximum (the merged reading answers "how long was the
    /// slowest PE's episode"), the in-force state keeps the first
    /// non-idle answer.
    pub fn merge(&mut self, other: &PeSchedSnapshot) {
        for (a, b) in self.ns.iter_mut().zip(other.ns.iter()) {
            *a += b;
        }
        self.span_ns = self.span_ns.max(other.span_ns);
        self.current = self.current.or(other.current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn states_are_dense_with_unique_names() {
        for (i, s) in SchedState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(SchedState::from_index(i), Some(*s));
            assert_eq!(SchedState::from_event_name(s.event_name()), Some(*s));
        }
        assert_eq!(SchedState::from_index(SchedState::COUNT), None);
        let mut names: Vec<&str> = SchedState::ALL.iter().map(|s| s.name()).collect();
        names.extend(SchedState::ALL.iter().map(|s| s.event_name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn a_finished_episode_sums_exactly_to_its_span() {
        let clock = StateClock::new(2);
        clock.enter(0, SchedState::Work);
        std::thread::sleep(Duration::from_millis(2));
        clock.enter(0, SchedState::StealSearch);
        clock.enter(0, SchedState::StealSearch); // same-state re-enter is free
        std::thread::sleep(Duration::from_millis(1));
        clock.enter(0, SchedState::Quiesce);
        clock.finish(0);
        let snap = clock.snapshot_pe(0);
        assert_eq!(snap.current, None);
        assert_eq!(
            snap.total_ns(),
            snap.span_ns,
            "every ns lands in one bucket"
        );
        assert!(snap.state_ns(SchedState::Work) >= 2_000_000);
        assert!(snap.state_ns(SchedState::StealSearch) >= 1_000_000);
        assert!(snap.utilization() > 0.0 && snap.utilization() < 1.0);
        // Untouched PE: empty.
        assert!(clock.snapshot_pe(1).is_empty());
        assert_eq!(clock.snapshot_pe(1).span_ns, 0);
    }

    #[test]
    fn finish_is_idempotent_and_current_tracks() {
        let clock = StateClock::new(1);
        assert_eq!(clock.current(0), None);
        clock.enter(0, SchedState::Park);
        assert_eq!(clock.current(0), Some(SchedState::Park));
        clock.finish(0);
        assert_eq!(clock.current(0), None);
        let a = clock.snapshot_pe(0);
        clock.finish(0);
        let b = clock.snapshot_pe(0);
        assert_eq!(a, b, "second finish records nothing");
    }

    #[test]
    fn running_snapshot_charges_the_open_state() {
        let clock = StateClock::new(1);
        clock.enter(0, SchedState::Spin);
        std::thread::sleep(Duration::from_millis(1));
        let snap = clock.snapshot_pe(0);
        assert_eq!(snap.current, Some(SchedState::Spin));
        assert!(snap.state_ns(SchedState::Spin) >= 1_000_000);
        assert!(snap.span_ns >= snap.state_ns(SchedState::Spin));
    }

    #[test]
    fn pes_wrap_like_registry_shards() {
        let clock = StateClock::new(2);
        clock.enter(2, SchedState::Work); // wraps to slot 0
        std::thread::sleep(Duration::from_millis(1));
        clock.finish(2);
        assert!(clock.snapshot_pe(0).state_ns(SchedState::Work) > 0);
        assert!(clock.snapshot_pe(1).is_empty(), "slot 1 untouched");
        assert_eq!(clock.num_slots(), 2);
        let zero = StateClock::new(0);
        zero.enter(5, SchedState::Work);
        zero.finish(5);
        assert_eq!(zero.num_slots(), 1);
    }

    #[test]
    fn merge_adds_times_and_maxes_spans() {
        let clock = StateClock::new(2);
        clock.enter(0, SchedState::Work);
        clock.finish(0);
        clock.enter(1, SchedState::Park);
        clock.finish(1);
        let mut m = clock.snapshot_pe(0);
        let other = clock.snapshot_pe(1);
        let total = m.total_ns() + other.total_ns();
        let span = m.span_ns.max(other.span_ns);
        m.merge(&other);
        assert_eq!(m.total_ns(), total);
        assert_eq!(m.span_ns, span);
    }
}
