//! Heap-pressure accounting: per-PE live-bytes clocks, allocation/free
//! meters, peak waterlines, and size-class histograms.
//!
//! The graph store keeps the *functional* byte clock (one add per alloc,
//! one subtract per free — always on, so `GcTrigger::HeapBytes` works in
//! every build) and journals each delta. `reduction::System` drains that
//! journal after every dispatch and replays it into a [`Tracker`],
//! attributing each vertex's bytes to the PE that owns it under the
//! current partition — Hudak's PEs own only local store, so heap pressure
//! is a per-PE quantity here too:
//!
//! 1. [`Tracker::alloc`] stamps a vertex's byte weight at allocation,
//!    feeds the per-PE live clock, the peak waterline, and the
//!    power-of-two size-class histogram (same [`bucket_index`] edge math
//!    as every other histogram in this crate);
//! 2. [`Tracker::free`] releases the bytes. A free whose vertex carried
//!    an allocation stamp is **exact** (the ≥95 % bytes-exactness the
//!    bench harness asserts); a tracker attached mid-run counts the rest
//!    as inexact;
//! 3. [`Tracker::close_cycle`] is called by the GC driver once per
//!    marking cycle: it snapshots the traffic since the previous close
//!    into a [`CycleHeap`] ledger (the source of the `hp_*` instants);
//! 4. [`Tracker::record_trigger`] tallies *why* each cycle started
//!    ([`TriggerCause`]), which `/metrics` exports as
//!    `dgr_gc_trigger_total{cause}`;
//! 5. [`Tracker::begin_episode`] resets the waterlines (a bench resets
//!    between sweep cells so each cell reports its own peak).
//!
//! Like [`lifecycle`](crate::lifecycle), everything here is always
//! compiled; the `telemetry` feature only decides whether the
//! `HeapTracker` alias at the crate root names this [`Tracker`] or the
//! zero-sized [`noop::HeapTracker`](crate::noop::HeapTracker).

use crate::lifecycle::quantile;
use crate::metrics::{bucket_index, HIST_BUCKETS};

/// Why a GC cycle started, under pressure-coupled triggering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerCause {
    /// The event-count period elapsed.
    Period,
    /// Live bytes crossed the configured `HeapBytes` bound.
    HeapBytes,
}

impl TriggerCause {
    /// The `cause` label value on `dgr_gc_trigger_total`.
    pub fn name(self) -> &'static str {
        match self {
            TriggerCause::Period => "period",
            TriggerCause::HeapBytes => "heap",
        }
    }

    /// The numeric code carried by the `hp_cause` instant.
    pub fn code(self) -> u64 {
        match self {
            TriggerCause::Period => 0,
            TriggerCause::HeapBytes => 1,
        }
    }

    /// Decodes an `hp_cause` instant value.
    pub fn from_code(code: u64) -> Option<TriggerCause> {
        match code {
            0 => Some(TriggerCause::Period),
            1 => Some(TriggerCause::HeapBytes),
            _ => None,
        }
    }
}

/// One marking cycle's heap ledger — the allocation traffic between two
/// [`Tracker::close_cycle`] calls — as emitted via `hp_*` instants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleHeap {
    /// The cycle number this record describes.
    pub cycle: u64,
    /// Vertices allocated in the window.
    pub allocs: u64,
    /// Vertices freed in the window.
    pub frees: u64,
    /// Bytes charged by allocations (and upward reweights).
    pub alloc_bytes: u64,
    /// Bytes released by frees.
    pub freed_bytes: u64,
    /// Of the freed bytes, how many came off stamped vertices.
    pub exact_bytes: u64,
    /// Frees whose vertex carried an allocation stamp.
    pub exact_frees: u64,
    /// Total live bytes when the cycle closed.
    pub live_end: u64,
    /// Peak total live bytes observed inside the window.
    pub peak: u64,
}

/// One PE's byte meters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeHeap {
    /// Live bytes owned by this PE now.
    pub live: u64,
    /// Peak live bytes since the episode began.
    pub peak: u64,
    /// Cumulative bytes this PE's vertices ever allocated.
    pub alloc_bytes: u64,
    /// Cumulative bytes this PE's vertices ever freed.
    pub free_bytes: u64,
    /// Allocation count.
    pub allocs: u64,
    /// Free count.
    pub frees: u64,
}

/// Cheap copyable totals of a [`Tracker`], suitable for publishing into
/// an `ObserveHub` once per cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeapSnapshot {
    /// Per-PE byte meters, indexed by PE.
    pub per_pe: Vec<PeHeap>,
    /// Total live bytes across all PEs.
    pub live: u64,
    /// Peak total live bytes since the episode began.
    pub peak: u64,
    /// Cumulative bytes ever allocated (incl. upward reweights).
    pub alloc_bytes: u64,
    /// Cumulative bytes ever freed.
    pub freed_bytes: u64,
    /// Total allocations.
    pub allocs: u64,
    /// Total frees.
    pub frees: u64,
    /// Frees whose vertex carried an allocation stamp.
    pub exact_frees: u64,
    /// Freed bytes that came off stamped vertices.
    pub exact_bytes: u64,
    /// Allocation-size histogram (power-of-two buckets of bytes).
    pub size: [u64; HIST_BUCKETS],
    /// Observations in the size histogram (= allocations).
    pub size_count: u64,
    /// Sum of histogrammed allocation sizes.
    pub size_sum: u64,
    /// Largest single allocation observed.
    pub size_max: u64,
    /// Cycles whose trigger cause was the event-count period.
    pub trigger_period: u64,
    /// Cycles whose trigger cause was the live-bytes bound.
    pub trigger_heap: u64,
    /// Closed cycles.
    pub cycles: u64,
}

impl HeapSnapshot {
    /// `true` if the tracker never saw an allocation or closed a cycle.
    pub fn is_empty(&self) -> bool {
        self.allocs == 0 && self.frees == 0 && self.cycles == 0
    }

    /// Fraction of freed *bytes* that came off stamped vertices
    /// (1 when nothing was freed).
    pub fn exact_fraction(&self) -> f64 {
        if self.freed_bytes == 0 {
            1.0
        } else {
            self.exact_bytes as f64 / self.freed_bytes as f64
        }
    }

    /// Mean allocation size in bytes (0 when nothing was allocated).
    pub fn mean_alloc_bytes(&self) -> f64 {
        if self.size_count == 0 {
            0.0
        } else {
            self.size_sum as f64 / self.size_count as f64
        }
    }

    /// Bucket-estimated allocation-size quantile in bytes (same
    /// convention as [`HistSnapshot::quantile`](crate::HistSnapshot)).
    pub fn size_quantile(&self, q: f64) -> u64 {
        quantile(&self.size, self.size_count, self.size_max, q)
    }

    /// Trigger tallies as `(cause name, count)` pairs in fixed order.
    pub fn triggers(&self) -> [(&'static str, u64); 2] {
        [
            (TriggerCause::Period.name(), self.trigger_period),
            (TriggerCause::HeapBytes.name(), self.trigger_heap),
        ]
    }
}

/// Sentinel for "no stamp" in the per-vertex byte-stamp array (stored
/// values are `bytes + 1`).
const UNSTAMPED: u64 = 0;

/// The recording heap tracker (see the module docs for the protocol).
/// Single-threaded by design: it is fed from the system's dispatch loop
/// and the collector's restructure path, which already own the graph.
#[derive(Debug, Default)]
pub struct Tracker {
    /// Per-vertex: allocation-stamped byte weight + 1.
    stamps: Vec<u64>,
    /// The open window's ledger (traffic since the last `close_cycle`).
    cur: CycleHeap,
    /// Running totals.
    snap: HeapSnapshot,
}

impl Tracker {
    /// A fresh tracker with `num_pes` per-PE meters.
    pub fn new(num_pes: usize) -> Self {
        Tracker {
            snap: HeapSnapshot {
                per_pe: vec![PeHeap::default(); num_pes],
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// `true`: this is the recording implementation.
    #[inline(always)]
    pub const fn enabled(&self) -> bool {
        true
    }

    fn pe_slot(&mut self, pe: usize) -> &mut PeHeap {
        if pe >= self.snap.per_pe.len() {
            self.snap.per_pe.resize(pe + 1, PeHeap::default());
        }
        &mut self.snap.per_pe[pe]
    }

    fn stamp_slot(&mut self, idx: usize) -> &mut u64 {
        if idx >= self.stamps.len() {
            self.stamps.resize(idx + 1, UNSTAMPED);
        }
        &mut self.stamps[idx]
    }

    fn note_peak(&mut self) {
        self.snap.peak = self.snap.peak.max(self.snap.live);
        self.cur.peak = self.cur.peak.max(self.snap.live);
    }

    /// Records vertex `idx` (owned by `pe`) allocating `bytes`: stamps
    /// the weight, feeds the clocks, waterlines and size histogram.
    pub fn alloc(&mut self, pe: usize, idx: usize, bytes: u64) {
        *self.stamp_slot(idx) = bytes + 1;
        let shard = self.pe_slot(pe);
        shard.live += bytes;
        shard.peak = shard.peak.max(shard.live);
        shard.alloc_bytes += bytes;
        shard.allocs += 1;
        self.snap.live += bytes;
        self.snap.alloc_bytes += bytes;
        self.snap.allocs += 1;
        self.snap.size[bucket_index(bytes)] += 1;
        self.snap.size_count += 1;
        self.snap.size_sum += bytes;
        self.snap.size_max = self.snap.size_max.max(bytes);
        self.cur.allocs += 1;
        self.cur.alloc_bytes += bytes;
        self.note_peak();
    }

    /// Records vertex `idx` (owned by `pe`) freeing `bytes`. Exact when
    /// the vertex carried an allocation stamp; inexact otherwise (the
    /// tracker attached after the vertex was built).
    pub fn free(&mut self, pe: usize, idx: usize, bytes: u64) {
        let exact = idx < self.stamps.len() && self.stamps[idx] != UNSTAMPED;
        if exact {
            self.stamps[idx] = UNSTAMPED;
        }
        let shard = self.pe_slot(pe);
        shard.live = shard.live.saturating_sub(bytes);
        shard.free_bytes += bytes;
        shard.frees += 1;
        self.snap.live = self.snap.live.saturating_sub(bytes);
        self.snap.freed_bytes += bytes;
        self.snap.frees += 1;
        self.cur.frees += 1;
        self.cur.freed_bytes += bytes;
        if exact {
            self.snap.exact_frees += 1;
            self.snap.exact_bytes += bytes;
            self.cur.exact_frees += 1;
            self.cur.exact_bytes += bytes;
        }
    }

    /// Records vertex `idx` (owned by `pe`) reweighting from `old` to
    /// `new` bytes: the live clocks move by the difference, upward
    /// deltas count as allocated bytes (growth), and the stamp follows
    /// the new weight so the eventual free stays exact.
    pub fn reweight(&mut self, pe: usize, idx: usize, old: u64, new: u64) {
        let stamped = idx < self.stamps.len() && self.stamps[idx] != UNSTAMPED;
        if stamped {
            self.stamps[idx] = new + 1;
        }
        let grow = new.saturating_sub(old);
        let shard = self.pe_slot(pe);
        shard.live = (shard.live + new).saturating_sub(old);
        shard.peak = shard.peak.max(shard.live);
        shard.alloc_bytes += grow;
        self.snap.live = (self.snap.live + new).saturating_sub(old);
        self.snap.alloc_bytes += grow;
        self.cur.alloc_bytes += grow;
        self.note_peak();
    }

    /// Tallies why a GC cycle started.
    pub fn record_trigger(&mut self, cause: TriggerCause) {
        match cause {
            TriggerCause::Period => self.snap.trigger_period += 1,
            TriggerCause::HeapBytes => self.snap.trigger_heap += 1,
        }
    }

    /// Resets the waterlines to the current live level — the start of a
    /// fresh measurement episode (a bench sweep cell). Cumulative meters
    /// and stamps are untouched.
    pub fn begin_episode(&mut self) {
        self.snap.peak = self.snap.live;
        for shard in &mut self.snap.per_pe {
            shard.peak = shard.live;
        }
        self.cur.peak = self.snap.live;
    }

    /// Closes the window at GC cycle `cycle`: stamps the cycle number
    /// and closing live level into the ledger, returns it, and opens a
    /// fresh window whose peak starts at the current live level.
    pub fn close_cycle(&mut self, cycle: u64) -> CycleHeap {
        self.cur.cycle = cycle;
        self.cur.live_end = self.snap.live;
        self.snap.cycles += 1;
        let closed = self.cur;
        self.cur = CycleHeap {
            peak: self.snap.live,
            ..Default::default()
        };
        closed
    }

    /// Total live bytes across all PEs, as accounted by the tracker.
    pub fn live_bytes(&self) -> u64 {
        self.snap.live
    }

    /// Peak total live bytes since the episode began.
    pub fn peak_bytes(&self) -> u64 {
        self.snap.peak
    }

    /// Running totals (the open window is visible in the scalar meters;
    /// per-cycle ledgers come from [`Tracker::close_cycle`]).
    pub fn snapshot(&self) -> HeapSnapshot {
        self.snap.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocks_meters_and_histogram_track_alloc_free() {
        let mut t = Tracker::new(2);
        t.alloc(0, 0, 32);
        t.alloc(1, 1, 16);
        t.alloc(0, 2, 100);
        assert_eq!(t.live_bytes(), 148);
        assert_eq!(t.peak_bytes(), 148);
        t.free(0, 2, 100);
        assert_eq!(t.live_bytes(), 48);
        assert_eq!(t.peak_bytes(), 148, "waterline holds after a free");
        let s = t.snapshot();
        assert_eq!(s.per_pe[0].live, 32);
        assert_eq!(s.per_pe[0].peak, 132);
        assert_eq!(s.per_pe[1].live, 16);
        assert_eq!((s.allocs, s.frees), (3, 1));
        assert_eq!((s.alloc_bytes, s.freed_bytes), (148, 100));
        assert_eq!(s.size_count, 3);
        assert_eq!(s.size_sum, 148);
        assert_eq!(s.size_max, 100);
        assert_eq!(s.size[bucket_index(16)], 1);
        assert_eq!(s.size[bucket_index(32)], 1);
        assert_eq!(s.size[bucket_index(100)], 1);
        assert!((s.mean_alloc_bytes() - 148.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.size_quantile(0.5), 63, "upper edge of 32's bucket");
    }

    #[test]
    fn stamped_frees_are_exact_and_unstamped_are_not() {
        let mut t = Tracker::new(1);
        t.alloc(0, 5, 40);
        t.free(0, 5, 40);
        t.free(0, 9, 60); // never stamped
        let s = t.snapshot();
        assert_eq!(s.exact_frees, 1);
        assert_eq!(s.exact_bytes, 40);
        assert_eq!(s.freed_bytes, 100);
        assert!((s.exact_fraction() - 0.4).abs() < 1e-9);
        // A re-allocated slot is stamped again.
        t.alloc(0, 5, 8);
        t.free(0, 5, 8);
        assert_eq!(t.snapshot().exact_frees, 2);
    }

    #[test]
    fn reweight_moves_the_clock_and_keeps_the_free_exact() {
        let mut t = Tracker::new(1);
        t.alloc(0, 3, 24);
        t.reweight(0, 3, 24, 30);
        assert_eq!(t.live_bytes(), 30);
        assert_eq!(t.snapshot().alloc_bytes, 30, "growth charged");
        t.reweight(0, 3, 30, 10);
        assert_eq!(t.live_bytes(), 10);
        assert_eq!(t.snapshot().alloc_bytes, 30, "shrink is free");
        t.free(0, 3, 10);
        let s = t.snapshot();
        assert_eq!(s.exact_bytes, 10, "stamp followed the reweight");
        assert_eq!(s.live, 0);
    }

    #[test]
    fn close_cycle_windows_the_traffic() {
        let mut t = Tracker::new(1);
        t.alloc(0, 0, 50);
        let c1 = t.close_cycle(1);
        assert_eq!(c1.cycle, 1);
        assert_eq!(c1.allocs, 1);
        assert_eq!(c1.alloc_bytes, 50);
        assert_eq!(c1.live_end, 50);
        assert_eq!(c1.peak, 50);
        t.alloc(0, 1, 30);
        t.free(0, 0, 50);
        let c2 = t.close_cycle(2);
        assert_eq!((c2.allocs, c2.frees), (1, 1));
        assert_eq!(c2.peak, 80, "peak inside the second window only");
        assert_eq!(c2.live_end, 30);
        assert_eq!(c2.exact_bytes, 50);
        assert_eq!(t.snapshot().cycles, 2);
    }

    #[test]
    fn episodes_reset_waterlines_but_not_meters() {
        let mut t = Tracker::new(2);
        t.alloc(0, 0, 100);
        t.free(0, 0, 100);
        t.alloc(1, 1, 10);
        assert_eq!(t.peak_bytes(), 100);
        t.begin_episode();
        assert_eq!(t.peak_bytes(), 10, "waterline restarts at live");
        assert_eq!(t.snapshot().per_pe[0].peak, 0);
        assert_eq!(t.snapshot().alloc_bytes, 110, "meters survive");
        t.alloc(1, 2, 5);
        assert_eq!(t.peak_bytes(), 15);
    }

    #[test]
    fn trigger_tallies_land_under_their_cause() {
        let mut t = Tracker::new(1);
        t.record_trigger(TriggerCause::Period);
        t.record_trigger(TriggerCause::HeapBytes);
        t.record_trigger(TriggerCause::HeapBytes);
        let s = t.snapshot();
        assert_eq!(s.trigger_period, 1);
        assert_eq!(s.trigger_heap, 2);
        assert_eq!(s.triggers(), [("period", 1), ("heap", 2)]);
    }

    #[test]
    fn cause_codes_roundtrip() {
        for cause in [TriggerCause::Period, TriggerCause::HeapBytes] {
            assert_eq!(TriggerCause::from_code(cause.code()), Some(cause));
        }
        assert_eq!(TriggerCause::from_code(7), None);
    }

    #[test]
    fn empty_snapshot_is_empty_and_safe() {
        let s = HeapSnapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.exact_fraction(), 1.0);
        assert_eq!(s.mean_alloc_bytes(), 0.0);
        assert_eq!(s.size_quantile(0.99), 0);
    }
}
