//! dgr-telemetry: zero-dependency tracing, metrics and marking-cycle
//! timelines for the distributed-reduction runtime.
//!
//! The crate has three layers:
//!
//! * **Metrics** ([`metrics`], [`ids`]): a closed enum of counters,
//!   gauges and fixed-bucket histograms behind per-PE shards. A hot-path
//!   update is one array index plus one relaxed atomic op — no hashing,
//!   no locking, no allocation.
//! * **Events** ([`ring`], [`trace`]): span begin/end and instant events
//!   (PE, cycle, phase tag, value) in a fixed-capacity overwrite-oldest
//!   ring per PE, drained to JSON Lines or Chrome `trace_event` format.
//! * **Cycle reports** ([`cycle`]): one [`CycleReport`] per marking
//!   cycle — phase durations, local/remote traffic, backlog high-water,
//!   per-priority marked counts, census and reclaim tallies — with
//!   plain-text and JSON timeline renderers.
//!
//! # The `telemetry` feature
//!
//! Instrumentation sites hold a [`Registry`] (usually by reference) and
//! call it unconditionally. With the `telemetry` feature **on**, that
//! alias is [`active::Registry`] and everything records. With it **off**
//! (the default), the alias is [`noop::Registry`]: a zero-sized type
//! whose methods are empty `#[inline(always)]` bodies, so the calls
//! compile away and the hot loops carry no telemetry atomics at all —
//! `noop::tests::noop_types_are_zero_sized` pins this at the type layer.
//!
//! Both implementations are always compiled and tested; the feature only
//! switches which one the root re-export names. Code that needs the real
//! registry regardless of features (e.g. a bench binary) can use
//! [`active::Registry`] by its full path.

pub mod active;
pub mod cycle;
pub mod flight;
pub mod heap;
pub mod heartbeat;
pub mod ids;
pub mod lifecycle;
pub mod metrics;
pub mod noop;
pub mod ring;
pub mod sched;
pub mod trace;

pub use cycle::{timeline_json, timeline_text, CycleReport};
pub use flight::{flight_json, flight_path, write_flight, FLIGHT_DIR_ENV};
pub use heap::{CycleHeap, HeapSnapshot, PeHeap, TriggerCause};
pub use heartbeat::Heartbeat;
pub use ids::{CounterId, GaugeId, HistId, Phase};
pub use lifecycle::{CycleLifecycle, LifecycleSnapshot};
pub use metrics::{
    bucket_index, bucket_label, bucket_lower_edge, bucket_upper_edge, HistSnapshot,
    MetricsSnapshot, PeSnapshot, HIST_BUCKETS,
};
pub use ring::{Event, EventKind};
pub use sched::{PeSchedSnapshot, SchedState, StateClock};
pub use trace::{chrome_trace_json, events_jsonl, json_escape};

#[cfg(feature = "telemetry")]
pub use active::{FlowTag, HeartbeatHandle, PeShard, Registry, SpanGuard};
#[cfg(feature = "telemetry")]
pub use heap::Tracker as HeapTracker;
#[cfg(feature = "telemetry")]
pub use lifecycle::Tracker as LifecycleTracker;

#[cfg(not(feature = "telemetry"))]
pub use noop::HeapTracker;
#[cfg(not(feature = "telemetry"))]
pub use noop::LifecycleTracker;
#[cfg(not(feature = "telemetry"))]
pub use noop::{FlowTag, HeartbeatHandle, PeShard, Registry, SpanGuard};

/// `true` when this build records telemetry (the `telemetry` feature is
/// on), `false` when [`Registry`] is the zero-sized no-op.
pub const TELEMETRY_ENABLED: bool = cfg!(feature = "telemetry");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_matches_the_feature() {
        let r = Registry::new(2);
        assert_eq!(r.enabled(), TELEMETRY_ENABLED);
        r.pe(0).inc(CounterId::Tasks);
        let total = r.snapshot().counter_total(CounterId::Tasks);
        assert_eq!(total, if TELEMETRY_ENABLED { 1 } else { 0 });
    }
}
