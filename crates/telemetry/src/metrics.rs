//! Concrete atomic metric primitives and their snapshots.
//!
//! Everything here is always compiled, feature or not: the `telemetry`
//! feature only decides whether the [`Registry`](crate::Registry) facade
//! at the crate root aliases [`active`](crate::active) (which is built on
//! these types) or [`noop`](crate::noop). Keeping the primitives
//! unconditional means the unit and property tests exercise the real
//! atomics in every build configuration.
//!
//! All atomics use `Relaxed` ordering: metrics are monotone tallies read
//! after the fact, never used for synchronization.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::ids::{CounterId, GaugeId, HistId};
use crate::sched::PeSchedSnapshot;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value / extreme-value gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water tracking).
    pub fn raise(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets (fixed at compile time).
pub const HIST_BUCKETS: usize = 17;

/// Bucket index for a value: bucket 0 holds zeros, bucket `i` (1..16)
/// holds `2^(i-1) <= v < 2^i`, and the last bucket absorbs everything
/// from `2^15` up.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower edge of a bucket: the smallest value that lands in
/// bucket `i` (see [`bucket_index`]).
///
/// # Panics
///
/// Panics if `i >= HIST_BUCKETS`.
pub fn bucket_lower_edge(i: usize) -> u64 {
    assert!(i < HIST_BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper edge of a bucket: the largest value that lands in
/// bucket `i`. The last bucket is open-ended, so its edge is `u64::MAX`;
/// quantile estimation substitutes the observed maximum there.
///
/// # Panics
///
/// Panics if `i >= HIST_BUCKETS`.
pub fn bucket_upper_edge(i: usize) -> u64 {
    assert!(i < HIST_BUCKETS);
    if i == 0 {
        0
    } else if i == HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Human-readable range label for a bucket index.
///
/// # Panics
///
/// Panics if `i >= HIST_BUCKETS`.
pub fn bucket_label(i: usize) -> String {
    assert!(i < HIST_BUCKETS);
    match i {
        0 => "0".to_string(),
        1 => "1".to_string(),
        _ if i == HIST_BUCKETS - 1 => format!("\u{2265}{}", 1u64 << (HIST_BUCKETS - 2)),
        _ => format!("{}-{}", 1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// A fixed-bucket (power-of-two) histogram with count, sum and max.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [Counter; HIST_BUCKETS],
    count: Counter,
    sum: Counter,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].inc();
        self.count.inc();
        self.sum.add(v);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].get()),
            count: self.count.get(),
            sum: self.sum.get(),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Folds another snapshot into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by locating the bucket
    /// holding the rank-`⌈q·count⌉` observation and interpolating
    /// linearly inside it.
    ///
    /// The estimate is always bounded by the edges of that bucket
    /// ([`bucket_lower_edge`] / [`bucket_upper_edge`], with the observed
    /// maximum standing in for the open upper edge of the last bucket) —
    /// the error is therefore at most one power of two, which is the
    /// resolution the histogram stores. Returns 0 when empty; `q` outside
    /// `[0, 1]` clamps to the extremes.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                let lo = bucket_lower_edge(i);
                let hi = if i == HIST_BUCKETS - 1 {
                    self.max.max(lo)
                } else {
                    bucket_upper_edge(i)
                };
                // Position of the rank within this bucket, in (0, 1].
                let into = rank - (cum - c);
                let frac = into as f64 / c as f64;
                return lo + ((hi - lo) as f64 * frac).round() as u64;
            }
        }
        self.max
    }
}

/// A point-in-time copy of one PE shard's metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeSnapshot {
    counters: [u64; CounterId::COUNT],
    gauges: [i64; GaugeId::COUNT],
    hists: [HistSnapshot; HistId::COUNT],
    sched: PeSchedSnapshot,
}

impl Default for PeSnapshot {
    fn default() -> Self {
        PeSnapshot {
            counters: [0; CounterId::COUNT],
            gauges: [0; GaugeId::COUNT],
            hists: [HistSnapshot::default(); HistId::COUNT],
            sched: PeSchedSnapshot::default(),
        }
    }
}

impl PeSnapshot {
    /// Builds a snapshot from raw arrays (used by the active registry).
    pub fn from_parts(
        counters: [u64; CounterId::COUNT],
        gauges: [i64; GaugeId::COUNT],
        hists: [HistSnapshot; HistId::COUNT],
    ) -> Self {
        PeSnapshot {
            counters,
            gauges,
            hists,
            sched: PeSchedSnapshot::default(),
        }
    }

    /// Attaches a scheduler state-clock snapshot (used by the active
    /// registry; defaults to empty so existing constructors are
    /// unaffected).
    pub fn set_sched(&mut self, sched: PeSchedSnapshot) {
        self.sched = sched;
    }

    /// The PE's scheduler state clock (empty when the runtime recorded
    /// none).
    pub fn sched(&self) -> &PeSchedSnapshot {
        &self.sched
    }

    /// A counter's value.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    /// A gauge's value.
    pub fn gauge(&self, id: GaugeId) -> i64 {
        self.gauges[id.index()]
    }

    /// A histogram's snapshot.
    pub fn hist(&self, id: HistId) -> &HistSnapshot {
        &self.hists[id.index()]
    }

    /// Folds another shard into this one: counters and histograms add,
    /// gauges take the maximum (the cross-PE reading of a depth gauge is
    /// its worst case, not a sum of unrelated instants).
    pub fn merge(&mut self, other: &PeSnapshot) {
        for (c, o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += o;
        }
        for (g, o) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *g = (*g).max(*o);
        }
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
        self.sched.merge(&other.sched);
    }
}

/// A point-in-time copy of every PE shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// One entry per shard, indexed by PE.
    pub per_pe: Vec<PeSnapshot>,
}

impl MetricsSnapshot {
    /// All shards folded into one (see [`PeSnapshot::merge`]).
    pub fn merged(&self) -> PeSnapshot {
        let mut out = PeSnapshot::default();
        for pe in &self.per_pe {
            out.merge(pe);
        }
        out
    }

    /// Sum of one counter across shards.
    pub fn counter_total(&self, id: CounterId) -> u64 {
        self.per_pe.iter().map(|p| p.counter(id)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        g.raise(2);
        assert_eq!(g.get(), 4, "raise never lowers");
        g.raise(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        // Exactly at each boundary: 2^(i-1) opens bucket i.
        for i in 1..HIST_BUCKETS - 1 {
            assert_eq!(bucket_index(1 << (i - 1)), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index((1 << i) - 1), i, "upper bound of bucket {i}");
        }
        // Everything from 2^15 up lands in the last bucket.
        assert_eq!(bucket_index(1 << 15), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_labels_cover_the_range() {
        assert_eq!(bucket_label(0), "0");
        assert_eq!(bucket_label(1), "1");
        assert_eq!(bucket_label(2), "2-3");
        assert_eq!(bucket_label(16), "\u{2265}32768");
    }

    #[test]
    fn histogram_counts_sums_and_maxes() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 900] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 906);
        assert_eq!(s.max, 900);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[bucket_index(900)], 1);
        assert!((s.mean() - 181.2).abs() < 1e-9);
    }

    #[test]
    fn bucket_edges_bracket_their_members() {
        for i in 0..HIST_BUCKETS {
            let lo = bucket_lower_edge(i);
            assert_eq!(bucket_index(lo), i, "lower edge of bucket {i}");
            if i < HIST_BUCKETS - 1 {
                assert_eq!(
                    bucket_index(bucket_upper_edge(i)),
                    i,
                    "upper edge of bucket {i}"
                );
            }
        }
        assert_eq!(bucket_upper_edge(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_are_bounded_by_bucket_edges() {
        let h = Histogram::new();
        let values = [1u64, 2, 3, 5, 8, 13, 21, 900, 900, 40000];
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        let mut sorted = values;
        sorted.sort_unstable();
        for (qi, q) in [(0usize, 0.1), (4, 0.5), (8, 0.9)] {
            let truth = sorted[qi];
            let est = s.quantile(q);
            let b = bucket_index(truth);
            assert!(
                est >= bucket_lower_edge(b) && est <= bucket_upper_edge(b),
                "q={q}: estimate {est} escaped bucket {b} of true value {truth}"
            );
        }
        // The top quantile of the open last bucket is capped at the
        // observed maximum, not the bucket's infinite edge.
        assert_eq!(s.quantile(1.0), 40000);
        assert_eq!(s.quantile(2.0), 40000, "q clamps high");
        // q <= 0 clamps to the smallest observation's bucket.
        let low = s.quantile(0.0);
        assert!(low >= 1 && low <= bucket_upper_edge(bucket_index(1)));
    }

    #[test]
    fn quantile_of_empty_and_uniform_histograms() {
        assert_eq!(HistSnapshot::default().quantile(0.5), 0);
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(7);
        }
        let s = h.snapshot();
        for q in [0.01, 0.5, 0.99] {
            let est = s.quantile(q);
            assert!(
                (4..=7).contains(&est),
                "all-sevens estimate {est} in bucket [4,7]"
            );
        }
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.observe(v * v % 5000);
        }
        let s = h.snapshot();
        let mut last = 0;
        for i in 0..=20 {
            let est = s.quantile(i as f64 / 20.0);
            assert!(est >= last, "quantile must not decrease");
            last = est;
        }
    }

    #[test]
    fn snapshots_merge() {
        let mut a = HistSnapshot::default();
        let h = Histogram::new();
        h.observe(4);
        h.observe(5);
        a.merge(&h.snapshot());
        a.merge(&h.snapshot());
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 18);
        assert_eq!(a.max, 5);

        let mut p = PeSnapshot::default();
        let mut q = PeSnapshot::default();
        p.counters[CounterId::Tasks.index()] = 3;
        q.counters[CounterId::Tasks.index()] = 4;
        p.gauges[GaugeId::MailboxDepth.index()] = 9;
        q.gauges[GaugeId::MailboxDepth.index()] = 2;
        p.merge(&q);
        assert_eq!(p.counter(CounterId::Tasks), 7);
        assert_eq!(p.gauge(GaugeId::MailboxDepth), 9, "gauges merge by max");
    }
}
