//! Post-mortem flight recorder: dump the tail of the event ring, a
//! metrics snapshot and the in-flight message set to a JSON file when an
//! invariant check is about to panic.
//!
//! The dump is always compiled (it takes plain slices/snapshots, so it
//! works even when the registry is the no-op — the in-flight set comes
//! from the simulator, not from telemetry). The `events` array embeds
//! one event object **per line** in exactly the schema of
//! [`events_jsonl`](crate::trace::events_jsonl), so `dgr-trace` reads a
//! flight file with the same line parser it uses for event streams.

use std::fs;
use std::io;
use std::path::PathBuf;

use crate::ids::CounterId;
use crate::metrics::MetricsSnapshot;
use crate::ring::Event;
use crate::sched::SchedState;
use crate::trace::{events_jsonl, json_escape};

/// Environment variable naming the directory flight dumps land in
/// (current directory when unset).
pub const FLIGHT_DIR_ENV: &str = "DGR_FLIGHT_DIR";

/// Renders a flight dump as a JSON string.
///
/// `reason` is the panic message about to fire, `pe` the PE the
/// violation was observed on, `dropped` the number of events lost to
/// ring wraparound before the dump, and `in_flight` the debug rendering
/// of every undelivered message.
pub fn flight_json(
    reason: &str,
    pe: u16,
    events: &[Event],
    dropped: u64,
    snapshot: &MetricsSnapshot,
    in_flight: &[String],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"reason\": \"{}\",\n", json_escape(reason)));
    out.push_str(&format!("  \"pe\": {pe},\n"));
    out.push_str(&format!("  \"dropped_events\": {dropped},\n"));

    out.push_str("  \"counters\": [\n");
    for (i, shard) in snapshot.per_pe.iter().enumerate() {
        let fields: Vec<String> = CounterId::ALL
            .iter()
            .map(|&id| format!("\"{}\": {}", id.name(), shard.counter(id)))
            .collect();
        out.push_str(&format!(
            "    {{\"pe\": {}, {}}}{}\n",
            i,
            fields.join(", "),
            if i + 1 < snapshot.per_pe.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ],\n");

    // What each PE's scheduler was doing when the dump fired, with its
    // state clock — the first thing to read on a stall incident.
    out.push_str("  \"sched\": [\n");
    for (i, shard) in snapshot.per_pe.iter().enumerate() {
        let sched = shard.sched();
        let state = sched.current.map(|s| s.name()).unwrap_or("idle");
        let fields: Vec<String> = SchedState::ALL
            .iter()
            .map(|&s| format!("\"{}_ns\": {}", s.name(), sched.state_ns(s)))
            .collect();
        out.push_str(&format!(
            "    {{\"pe\": {}, \"state\": \"{}\", \"span_ns\": {}, {}}}{}\n",
            i,
            state,
            sched.span_ns,
            fields.join(", "),
            if i + 1 < snapshot.per_pe.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"in_flight\": [\n");
    for (i, m) in in_flight.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\"{}\n",
            json_escape(m),
            if i + 1 < in_flight.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");

    // One event object per line, jsonl schema, comma-terminated except
    // the last — `dgr-trace` strips the trailing comma per line.
    out.push_str("  \"events\": [\n");
    let jsonl = events_jsonl(events);
    let lines: Vec<&str> = jsonl.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            line,
            if i + 1 < lines.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Where a dump for `pe` goes: `$DGR_FLIGHT_DIR/flight-<pe>.json`, or
/// `./flight-<pe>.json` when the variable is unset.
pub fn flight_path(pe: u16) -> PathBuf {
    let dir = std::env::var(FLIGHT_DIR_ENV).unwrap_or_default();
    let mut p = if dir.is_empty() {
        PathBuf::new()
    } else {
        PathBuf::from(dir)
    };
    p.push(format!("flight-{pe}.json"));
    p
}

/// Renders and writes a flight dump, returning the path written.
///
/// Never panics: a dump is taken on the way into a panic, so IO errors
/// are returned for the caller to report (or ignore) rather than
/// masking the original failure.
pub fn write_flight(
    reason: &str,
    pe: u16,
    events: &[Event],
    dropped: u64,
    snapshot: &MetricsSnapshot,
    in_flight: &[String],
) -> io::Result<PathBuf> {
    let path = flight_path(pe);
    fs::write(
        &path,
        flight_json(reason, pe, events, dropped, snapshot, in_flight),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Phase;
    use crate::ring::EventKind;

    fn ev(ts: u64, kind: EventKind, flow: u64) -> Event {
        Event {
            ts_us: ts,
            pe: 0,
            cycle: 1,
            phase: Phase::Mr,
            kind,
            name: "M_R",
            value: flow,
            lamport: flow,
        }
    }

    #[test]
    fn flight_json_embeds_events_in_jsonl_schema() {
        let events = [ev(1, EventKind::FlowSend, 7), ev(2, EventKind::FlowRecv, 7)];
        let snap = MetricsSnapshot {
            per_pe: vec![Default::default(); 2],
        };
        let s = flight_json(
            "bad \"state\"",
            1,
            &events,
            3,
            &snap,
            &["Mark1 { v: 4 }".to_string()],
        );
        assert!(s.contains("\"reason\": \"bad \\\"state\\\"\""));
        assert!(s.contains("\"pe\": 1,"));
        assert!(s.contains("\"dropped_events\": 3"));
        assert!(s.contains("\"Mark1 { v: 4 }\""));
        // Embedded events match the jsonl line schema, one per line.
        let line = s
            .lines()
            .find(|l| l.contains("\"kind\": \"flow_send\""))
            .expect("send event embedded");
        let bare = line.trim().trim_end_matches(',');
        assert_eq!(
            bare,
            events_jsonl(&events[..1]).trim_end(),
            "a flight event line is a jsonl line"
        );
        // Every PE shard got a counters row.
        assert!(s.contains("{\"pe\": 0, "));
        assert!(s.contains("{\"pe\": 1, "));
    }

    #[test]
    fn flight_json_reports_last_known_scheduler_states() {
        let mut shard = crate::metrics::PeSnapshot::default();
        let mut sched = crate::sched::PeSchedSnapshot::default();
        sched.ns[SchedState::Park.index()] = 500;
        sched.current = Some(SchedState::Park);
        sched.span_ns = 500;
        shard.set_sched(sched);
        let snap = MetricsSnapshot {
            per_pe: vec![Default::default(), shard],
        };
        let s = flight_json("stall", 0, &[], 0, &snap, &[]);
        // PE 1 was parked when the dump fired; PE 0 never recorded.
        assert!(s.contains("\"state\": \"park\""), "got: {s}");
        assert!(s.contains("\"state\": \"idle\""));
        assert!(s.contains("\"park_ns\": 500"));
        assert!(s.contains("\"span_ns\": 500"));
        assert!(s.contains("\"work_ns\": 0"));
    }

    /// One test covers both the default path and the env override so
    /// the env mutation cannot race a parallel test reading it.
    #[test]
    fn write_flight_round_trips_to_disk() {
        assert_eq!(
            flight_path(4),
            PathBuf::from("flight-4.json"),
            "bare filename when the env var is unset"
        );
        let dir = std::env::temp_dir().join("dgr-flight-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var(FLIGHT_DIR_ENV, &dir);
        let snap = MetricsSnapshot::default();
        let path = write_flight("r", 2, &[], 0, &snap, &[]).unwrap();
        std::env::remove_var(FLIGHT_DIR_ENV);
        assert!(path.ends_with("flight-2.json"));
        assert!(path.starts_with(&dir), "env dir is honored");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\n"));
        assert!(body.contains("\"in_flight\": ["));
        std::fs::remove_file(&path).ok();
    }
}
