//! The zero-cost stand-in used when the `telemetry` feature is off.
//!
//! Every type here is zero-sized and every method an empty `#[inline]`
//! body, so instrumentation calls compile away entirely — the marking
//! hot loops carry **no atomics and no branches** from telemetry in a
//! default build. The API mirrors [`active`](crate::active) exactly;
//! `lib.rs` re-exports one or the other under the same names.

use crate::heap::{CycleHeap, HeapSnapshot, TriggerCause};
use crate::ids::{CounterId, GaugeId, HistId, Phase};
use crate::lifecycle::{CycleLifecycle, LifecycleSnapshot};
use crate::metrics::MetricsSnapshot;
use crate::ring::Event;
use crate::sched::{PeSchedSnapshot, SchedState};

/// No-op counterpart of [`active::FlowTag`](crate::active::FlowTag).
///
/// Zero-sized, so a `(FlowTag, M)` work item is layout-identical to a
/// bare `M` — flow stamping adds no bytes to hot-path messages in a
/// default build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowTag;

impl FlowTag {
    /// The "no flow" tag (the only value there is).
    pub const NONE: FlowTag = FlowTag;
}

/// No-op counterpart of
/// [`active::HeartbeatHandle`](crate::active::HeartbeatHandle).
///
/// Zero-sized: a driver field holding one adds no bytes and every beat
/// compiles away. [`HeartbeatHandle::shared`] still returns a (fresh,
/// never-beaten) concrete heartbeat so observer code written against the
/// facade type-checks in both feature states.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeartbeatHandle;

impl HeartbeatHandle {
    /// A no-op handle.
    #[inline(always)]
    pub fn new() -> Self {
        HeartbeatHandle
    }

    /// Ignores the shared heartbeat (nothing will beat it).
    #[inline(always)]
    pub fn from_shared(_hb: std::sync::Arc<crate::heartbeat::Heartbeat>) -> Self {
        HeartbeatHandle
    }

    /// A fresh, never-beaten heartbeat (no state is shared).
    #[inline(always)]
    pub fn shared(&self) -> std::sync::Arc<crate::heartbeat::Heartbeat> {
        std::sync::Arc::new(crate::heartbeat::Heartbeat::new())
    }

    /// `false`: nothing is recorded.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        false
    }

    /// Does nothing.
    #[inline(always)]
    pub fn begin_phase(&self, _cycle: u32, _phase: Phase) {}

    /// Does nothing.
    #[inline(always)]
    pub fn end_phase(&self) {}

    /// Does nothing.
    #[inline(always)]
    pub fn progress(&self, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn cycle_done(&self) {}
}

/// No-op counterpart of [`active::PeShard`](crate::active::PeShard).
#[derive(Debug)]
pub struct PeShard;

impl PeShard {
    /// Does nothing.
    #[inline(always)]
    pub fn inc(&self, _id: CounterId) {}

    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _id: CounterId, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn gauge_set(&self, _id: GaugeId, _v: i64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn gauge_max(&self, _id: GaugeId, _v: i64) {}

    /// Does nothing; always returns 0.
    #[inline(always)]
    pub fn gauge_add(&self, _id: GaugeId, _d: i64) -> i64 {
        0
    }

    /// Does nothing.
    #[inline(always)]
    pub fn observe(&self, _id: HistId, _v: u64) {}
}

/// No-op counterpart of [`active::Registry`](crate::active::Registry).
#[derive(Debug)]
pub struct Registry;

impl Registry {
    /// A no-op registry (ignores the PE count).
    #[inline(always)]
    pub fn new(_num_pes: u16) -> Self {
        Registry
    }

    /// A no-op registry (ignores both arguments).
    #[inline(always)]
    pub fn with_capacity(_num_pes: u16, _ring_capacity: usize) -> Self {
        Registry
    }

    /// `false`: nothing is recorded.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        false
    }

    /// Always 0.
    #[inline(always)]
    pub fn num_shards(&self) -> usize {
        0
    }

    /// The shared zero-sized shard.
    #[inline(always)]
    pub fn pe(&self, _pe: u16) -> &PeShard {
        &PeShard
    }

    /// Always 0 (no clock is read).
    #[inline(always)]
    pub fn now_us(&self) -> u64 {
        0
    }

    /// Does nothing (no clock is read).
    #[inline(always)]
    pub fn sched_enter(&self, _pe: u16, _state: SchedState) {}

    /// Does nothing.
    #[inline(always)]
    pub fn sched_finish(&self, _pe: u16) {}

    /// Always `None`.
    #[inline(always)]
    pub fn sched_current(&self, _pe: u16) -> Option<SchedState> {
        None
    }

    /// Always the empty clock.
    #[inline(always)]
    pub fn sched_snapshot(&self, _pe: u16) -> PeSchedSnapshot {
        PeSchedSnapshot::default()
    }

    /// Does nothing.
    #[inline(always)]
    pub fn begin(&self, _pe: u16, _cycle: u32, _phase: Phase, _name: &'static str) {}

    /// Does nothing.
    #[inline(always)]
    pub fn end(&self, _pe: u16, _cycle: u32, _phase: Phase, _name: &'static str) {}

    /// Does nothing.
    #[inline(always)]
    pub fn instant(&self, _pe: u16, _cycle: u32, _phase: Phase, _name: &'static str, _value: u64) {}

    /// A zero-sized guard.
    #[inline(always)]
    pub fn span(&self, _pe: u16, _cycle: u32, _phase: Phase, _name: &'static str) -> SpanGuard<'_> {
        SpanGuard(std::marker::PhantomData)
    }

    /// Does nothing.
    #[inline(always)]
    pub fn flow_send(&self, _pe: u16, _cycle: u32, _phase: Phase, _name: &'static str, _flow: u64) {
    }

    /// Does nothing.
    #[inline(always)]
    pub fn flow_recv(&self, _pe: u16, _cycle: u32, _phase: Phase, _name: &'static str, _flow: u64) {
    }

    /// Does nothing; returns the zero-sized tag.
    #[inline(always)]
    pub fn flow_send_tag(
        &self,
        _pe: u16,
        _cycle: u32,
        _phase: Phase,
        _name: &'static str,
    ) -> FlowTag {
        FlowTag
    }

    /// Does nothing.
    #[inline(always)]
    pub fn flow_recv_tag(
        &self,
        _pe: u16,
        _cycle: u32,
        _phase: Phase,
        _name: &'static str,
        _tag: FlowTag,
    ) {
    }

    /// Always 0.
    #[inline(always)]
    pub fn flows_in_flight(&self) -> usize {
        0
    }

    /// An empty snapshot.
    #[inline(always)]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Always empty.
    #[inline(always)]
    pub fn drain_events(&self) -> Vec<Event> {
        Vec::new()
    }

    /// Always 0.
    #[inline(always)]
    pub fn dropped_events(&self) -> u64 {
        0
    }
}

/// No-op counterpart of [`active::SpanGuard`](crate::active::SpanGuard).
#[derive(Debug)]
pub struct SpanGuard<'a>(std::marker::PhantomData<&'a ()>);

/// No-op counterpart of the recording
/// [`lifecycle::Tracker`](crate::lifecycle::Tracker).
///
/// Zero-sized: a collector field holding one adds no bytes, every stamp
/// compiles away, and [`LifecycleTracker::enabled`] returning `false`
/// lets call sites skip their whole-graph census loops.
#[derive(Debug, Default)]
pub struct LifecycleTracker;

impl LifecycleTracker {
    /// A no-op tracker.
    #[inline(always)]
    pub fn new() -> Self {
        LifecycleTracker
    }

    /// `false`: nothing is recorded (skip the census loop).
    #[inline(always)]
    pub const fn enabled(&self) -> bool {
        false
    }

    /// Does nothing.
    #[inline(always)]
    pub fn begin_cycle(&mut self, _cycle: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn observe_alive(&mut self, _idx: usize) {}

    /// Does nothing.
    #[inline(always)]
    pub fn garbage_vertex(&mut self, _idx: usize) {}

    /// Does nothing.
    #[inline(always)]
    pub fn reclaim_vertex(&mut self, _idx: usize) {}

    /// Does nothing.
    #[inline(always)]
    pub fn meter_msgs(&mut self, _mt: u64, _mr: u64, _bound: u64) {}

    /// Does nothing; returns the zero record.
    #[inline(always)]
    pub fn end_cycle(&mut self) -> CycleLifecycle {
        CycleLifecycle::default()
    }

    /// Always the empty snapshot.
    #[inline(always)]
    pub fn snapshot(&self) -> LifecycleSnapshot {
        LifecycleSnapshot::default()
    }

    /// Always empty.
    #[inline(always)]
    pub fn worst_floaters(&self, _k: usize) -> Vec<(u32, u64)> {
        Vec::new()
    }

    /// Always `None`.
    #[inline(always)]
    pub fn unreachable_cycle(&self, _idx: usize) -> Option<u64> {
        None
    }

    /// Always `None`.
    #[inline(always)]
    pub fn birth_cycle(&self, _idx: usize) -> Option<u64> {
        None
    }
}

/// No-op counterpart of the recording
/// [`heap::Tracker`](crate::heap::Tracker).
///
/// Zero-sized: a system field holding one adds no bytes, every byte
/// stamp compiles away, and [`HeapTracker::enabled`] returning `false`
/// lets call sites skip their journal-drain loops.
#[derive(Debug, Default)]
pub struct HeapTracker;

impl HeapTracker {
    /// A no-op tracker (ignores the PE count).
    #[inline(always)]
    pub fn new(_num_pes: usize) -> Self {
        HeapTracker
    }

    /// `false`: nothing is recorded (skip the journal drain).
    #[inline(always)]
    pub const fn enabled(&self) -> bool {
        false
    }

    /// Does nothing.
    #[inline(always)]
    pub fn alloc(&mut self, _pe: usize, _idx: usize, _bytes: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn free(&mut self, _pe: usize, _idx: usize, _bytes: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn reweight(&mut self, _pe: usize, _idx: usize, _old: u64, _new: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn record_trigger(&mut self, _cause: TriggerCause) {}

    /// Does nothing.
    #[inline(always)]
    pub fn begin_episode(&mut self) {}

    /// Does nothing; returns the zero record.
    #[inline(always)]
    pub fn close_cycle(&mut self, _cycle: u64) -> CycleHeap {
        CycleHeap::default()
    }

    /// Always 0.
    #[inline(always)]
    pub fn live_bytes(&self) -> u64 {
        0
    }

    /// Always 0.
    #[inline(always)]
    pub fn peak_bytes(&self) -> u64 {
        0
    }

    /// Always the empty snapshot.
    #[inline(always)]
    pub fn snapshot(&self) -> HeapSnapshot {
        HeapSnapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The type-layer guarantee the `telemetry`-off build relies on: the
    /// no-op registry, shard and span guard occupy zero bytes, so no
    /// atomics (or any state at all) can hide behind an instrumentation
    /// call compiled against them.
    #[test]
    fn noop_types_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Registry>(), 0);
        assert_eq!(std::mem::size_of::<PeShard>(), 0);
        assert_eq!(std::mem::size_of::<SpanGuard<'_>>(), 0);
        assert_eq!(std::mem::size_of::<FlowTag>(), 0);
        assert_eq!(std::mem::size_of::<HeartbeatHandle>(), 0);
        assert_eq!(std::mem::size_of::<LifecycleTracker>(), 0);
        assert_eq!(std::mem::size_of::<HeapTracker>(), 0);
    }

    #[test]
    fn noop_heap_tracks_nothing() {
        let mut t = HeapTracker::new(4);
        assert!(!t.enabled());
        t.alloc(0, 1, 32);
        t.reweight(0, 1, 32, 64);
        t.free(0, 1, 64);
        t.record_trigger(TriggerCause::HeapBytes);
        t.begin_episode();
        let rec = t.close_cycle(3);
        assert_eq!(rec, CycleHeap::default());
        assert_eq!(t.live_bytes(), 0);
        assert_eq!(t.peak_bytes(), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn noop_lifecycle_tracks_nothing() {
        let mut t = LifecycleTracker::new();
        assert!(!t.enabled());
        t.begin_cycle(1);
        t.observe_alive(0);
        t.garbage_vertex(1);
        t.reclaim_vertex(1);
        t.meter_msgs(3, 4, 10);
        let rec = t.end_cycle();
        assert_eq!(rec, CycleLifecycle::default());
        assert!(t.snapshot().is_empty());
        assert!(t.worst_floaters(8).is_empty());
        assert_eq!(t.unreachable_cycle(1), None);
        assert_eq!(t.birth_cycle(1), None);
    }

    #[test]
    fn noop_heartbeat_beats_nothing() {
        let hb = HeartbeatHandle::new();
        assert!(!hb.enabled());
        hb.begin_phase(1, Phase::Mr);
        hb.progress(10);
        hb.end_phase();
        hb.cycle_done();
        let shared = hb.shared();
        assert_eq!(shared.beats(), 0, "no beat ever reaches the shared pulse");
        assert_eq!(shared.progress_total(), 0);
        assert_eq!(shared.phase(), None);
    }

    #[test]
    fn noop_api_observes_nothing() {
        let r = Registry::new(4);
        assert!(!r.enabled());
        r.pe(0).inc(CounterId::MarkEvents);
        r.pe(1).add(CounterId::SendsRemote, 10);
        r.pe(2).observe(HistId::BatchSize, 3);
        r.begin(0, 1, Phase::Mr, "M_R");
        r.instant(0, 1, Phase::Mr, "marked", 7);
        r.end(0, 1, Phase::Mr, "M_R");
        {
            let _g = r.span(0, 1, Phase::Gc, "cycle");
        }
        let tag = r.flow_send_tag(0, 1, Phase::Mr, "mark");
        r.flow_recv_tag(1, 1, Phase::Mr, "mark", tag);
        r.flow_send(0, 1, Phase::Mt, "mark", 7);
        r.flow_recv(1, 1, Phase::Mt, "mark", 7);
        r.sched_enter(0, SchedState::Work);
        assert_eq!(r.sched_current(0), None, "no state clock runs");
        r.sched_finish(0);
        assert!(r.sched_snapshot(0).is_empty());
        assert_eq!(r.snapshot().merged().sched().total_ns(), 0);
        assert_eq!(r.flows_in_flight(), 0);
        assert_eq!(r.snapshot().merged().counter(CounterId::MarkEvents), 0);
        assert!(r.drain_events().is_empty());
        assert_eq!(r.dropped_events(), 0);
        assert_eq!(r.now_us(), 0);
    }
}
