//! Properties of the work-stealing threaded marking runtime.
//!
//! Quantified over random digraphs, seeds, PE counts, and placement
//! strategies:
//!
//! 1. the marked set equals the sequential oracle's reachable-through-R
//!    set — stealing moves tasks between PEs, but mark transitions are
//!    CAS/fetch-sub on the shared mark words, so placement must not be
//!    observable in the result;
//! 2. the total task count (marks + returns) equals the deterministic
//!    event simulator's event count on the same graph — Hudak's mark1
//!    performs a schedule-independent amount of work, so the racy real
//!    runtime must do exactly as many deliveries as the serialized one.
//!
//! Multi-parent vertices are the interesting case (concurrent claims,
//! lost races, wrong-parent return routing), so the generator leans on
//! shared substructure: average degree up to 4 with uniformly random
//! targets produces plenty of diamonds and cycles.

use dgr_core::driver::{run_mark1, MarkRunConfig};
use dgr_core::threaded::run_mark1_threaded;
use dgr_graph::{oracle, GraphStore, NodeLabel, PartitionStrategy, Slot, VertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: usize, degree: f64, seed: u64) -> GraphStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = GraphStore::with_capacity(n);
    let ids: Vec<VertexId> = (0..n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    for &v in &ids {
        let d = rng.gen_range(0..=(2.0 * degree) as usize);
        for _ in 0..d {
            g.connect(v, ids[rng.gen_range(0..n)]);
        }
    }
    g.set_root(ids[0]);
    g
}

fn mark_set(g: &GraphStore) -> Vec<bool> {
    g.ids()
        .map(|v| !g.is_free(v) && g.mark(v, Slot::R).is_marked())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn steal_marking_matches_the_oracle_and_detsim(
        seed in 0u64..(1u64 << 32),
        n in 40usize..320,
        degree in 0.5f64..4.0,
        pes in prop_oneof![Just(1u16), Just(2), Just(4), Just(8)],
        strat in prop_oneof![
            Just(PartitionStrategy::Modulo),
            Just(PartitionStrategy::Block),
        ],
    ) {
        let base = random_graph(n, degree, seed);
        let want: Vec<bool> = {
            let reach = oracle::reachable_r(&base);
            base.ids()
                .map(|v| !base.is_free(v) && reach.contains(v))
                .collect()
        };

        let mut sim = base.clone();
        let sim_stats = run_mark1(
            &mut sim,
            &MarkRunConfig {
                num_pes: pes,
                partition: strat,
                ..Default::default()
            },
        );

        let (thr, messages) = run_mark1_threaded(base, pes, strat);
        prop_assert_eq!(
            mark_set(&thr),
            want,
            "marked set != oracle (seed {}, {} PEs, {:?})",
            seed,
            pes,
            strat
        );
        prop_assert_eq!(
            messages,
            sim_stats.events,
            "task count != DetSim events (seed {}, {} PEs, {:?})",
            seed,
            pes,
            strat
        );
    }
}
