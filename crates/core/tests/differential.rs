//! Differential testing: four independent implementations of the marking
//! pass — event-simulated, round-synchronous (BSP), threaded (real
//! parallelism), and the Section 6 compressed variant — must produce the
//! identical mark set on the same graph, which must equal the sequential
//! oracle's `R`.

use dgr_core::compressed::run_mark1_compressed;
use dgr_core::driver::{run_mark1, run_mark1_bsp, MarkRunConfig};
use dgr_core::threaded::run_mark1_threaded;
use dgr_graph::{oracle, GraphStore, NodeLabel, PartitionStrategy, Slot, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: usize, degree: f64, seed: u64, free_some: bool) -> GraphStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = GraphStore::with_capacity(n);
    let ids: Vec<VertexId> = (0..n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    for &v in &ids {
        let d = rng.gen_range(0..=(2.0 * degree) as usize);
        for _ in 0..d {
            g.connect(v, ids[rng.gen_range(0..n)]);
        }
    }
    g.set_root(ids[0]);
    if free_some {
        // Free a few unreachable vertices to exercise the free-list path.
        let reach = oracle::reachable_r(&g);
        let victims: Vec<_> = g
            .live_ids()
            .filter(|&v| !reach.contains(v))
            .take(n / 10)
            .collect();
        for victim in victims {
            for u in g.live_ids().collect::<Vec<_>>() {
                while g.disconnect(u, victim) {}
            }
            g.free(victim);
        }
    }
    g
}

fn mark_set(g: &GraphStore) -> Vec<bool> {
    g.ids()
        .map(|v| !g.is_free(v) && g.mark(v, Slot::R).is_marked())
        .collect()
}

#[test]
fn four_implementations_agree_with_each_other_and_the_oracle() {
    for seed in 0..12 {
        for pes in [1u16, 3, 8] {
            let base = random_graph(400, 2.0, seed, seed % 2 == 0);
            let want: Vec<bool> = {
                let reach = oracle::reachable_r(&base);
                base.ids()
                    .map(|v| !base.is_free(v) && reach.contains(v))
                    .collect()
            };

            let mut sim = base.clone();
            run_mark1(
                &mut sim,
                &MarkRunConfig {
                    num_pes: pes,
                    ..Default::default()
                },
            );
            assert_eq!(mark_set(&sim), want, "sim, seed {seed}, {pes} PEs");

            let mut bsp = base.clone();
            run_mark1_bsp(&mut bsp, pes, PartitionStrategy::Modulo);
            assert_eq!(mark_set(&bsp), want, "bsp, seed {seed}, {pes} PEs");

            let (thr, _) = run_mark1_threaded(base.clone(), pes, PartitionStrategy::Block);
            assert_eq!(mark_set(&thr), want, "threaded, seed {seed}, {pes} PEs");

            let mut comp = base.clone();
            run_mark1_compressed(&mut comp, pes, PartitionStrategy::Modulo);
            assert_eq!(mark_set(&comp), want, "compressed, seed {seed}, {pes} PEs");
        }
    }
}

#[test]
fn threaded_batching_preserves_mark_set_and_message_count() {
    // The batched threaded runtime must be observationally identical to
    // the deterministic simulator on random cyclic graphs with sharing:
    // same mark set, and — because mark1's task count (one return per
    // mark, one spawn per first visit) is schedule-independent — exactly
    // as many messages handled as the simulator delivers events.
    for seed in 100..110 {
        let base = random_graph(600, 3.0, seed, seed % 3 == 0);
        let mut sim = base.clone();
        let sim_stats = run_mark1(&mut sim, &MarkRunConfig::default());
        let want = mark_set(&sim);
        for pes in [1u16, 2, 7] {
            let (thr, messages) = run_mark1_threaded(base.clone(), pes, PartitionStrategy::Modulo);
            assert_eq!(mark_set(&thr), want, "mark set, seed {seed}, {pes} PEs");
            assert_eq!(
                messages, sim_stats.events,
                "message count, seed {seed}, {pes} PEs"
            );
        }
    }
}

#[test]
fn agreement_on_pathological_shapes() {
    // Self-loop root, two-cycle, a long chain, and a dense clique.
    let mut shapes: Vec<GraphStore> = Vec::new();
    {
        let mut g = GraphStore::with_capacity(1);
        let v = g.alloc(NodeLabel::If).unwrap();
        g.connect(v, v);
        g.set_root(v);
        shapes.push(g);
    }
    {
        let mut g = GraphStore::with_capacity(2);
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::If).unwrap();
        g.connect(a, b);
        g.connect(b, a);
        g.set_root(a);
        shapes.push(g);
    }
    {
        let mut g = GraphStore::with_capacity(500);
        let ids: Vec<_> = (0..500)
            .map(|i| g.alloc(NodeLabel::lit_int(i)).unwrap())
            .collect();
        for w in ids.windows(2) {
            g.connect(w[0], w[1]);
        }
        g.set_root(ids[0]);
        shapes.push(g);
    }
    {
        let mut g = GraphStore::with_capacity(24);
        let ids: Vec<_> = (0..24)
            .map(|i| g.alloc(NodeLabel::lit_int(i)).unwrap())
            .collect();
        for &a in &ids {
            for &b in &ids {
                g.connect(a, b);
            }
        }
        g.set_root(ids[0]);
        shapes.push(g);
    }
    for (i, base) in shapes.into_iter().enumerate() {
        let reach = oracle::reachable_r(&base);
        let want: Vec<bool> = base
            .ids()
            .map(|v| !base.is_free(v) && reach.contains(v))
            .collect();
        let mut sim = base.clone();
        run_mark1(&mut sim, &MarkRunConfig::default());
        assert_eq!(mark_set(&sim), want, "shape {i} sim");
        let mut bsp = base.clone();
        run_mark1_bsp(&mut bsp, 5, PartitionStrategy::Block);
        assert_eq!(mark_set(&bsp), want, "shape {i} bsp");
        let (thr, _) = run_mark1_threaded(base.clone(), 5, PartitionStrategy::Modulo);
        assert_eq!(mark_set(&thr), want, "shape {i} threaded");
        let mut comp = base.clone();
        run_mark1_compressed(&mut comp, 5, PartitionStrategy::Block);
        assert_eq!(mark_set(&comp), want, "shape {i} compressed");
    }
}
