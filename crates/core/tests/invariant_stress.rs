//! Stress: the Section 4.2 marking invariants hold after *every* event
//! while the graph is mutated mid-marking through the cooperating
//! primitives, across algorithms, schedules and mutation rates.

use dgr_core::driver::{reset_slot, route};
use dgr_core::invariants::check_invariants;
use dgr_core::{coop, handle_mark, MarkMsg, MarkState, RMode};
use dgr_graph::{
    GraphStore, MarkParent, NodeLabel, PartitionMap, PartitionStrategy, Priority, Slot, VertexId,
};
use dgr_sim::{DetSim, SchedPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tree(depth: usize) -> GraphStore {
    let n = (1usize << (depth + 1)) - 1;
    let mut g = GraphStore::with_capacity(n + 8);
    let ids: Vec<VertexId> = (0..n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                g.connect(ids[i], ids[c]);
            }
        }
    }
    g.set_root(ids[0]);
    g
}

/// One random move (add-reference + delete-reference) through the
/// cooperating primitives.
fn random_move(
    rng: &mut StdRng,
    state: &mut MarkState,
    g: &mut GraphStore,
    sink: &mut dyn FnMut(MarkMsg),
) {
    for _ in 0..16 {
        let a = VertexId::new(rng.gen_range(0..g.capacity() as u32));
        if g.is_free(a) || g.vertex(a).args().is_empty() {
            continue;
        }
        let b = g.vertex(a).args()[rng.gen_range(0..g.vertex(a).args().len())];
        if g.vertex(b).args().is_empty() {
            continue;
        }
        let c = g.vertex(b).args()[rng.gen_range(0..g.vertex(b).args().len())];
        coop::add_reference(state, g, a, b, c, sink).unwrap();
        coop::delete_reference(g, b, c);
        return;
    }
}

fn stress(mode: RMode, seed: u64, mutation_period: u64) {
    let mut g = random_tree(6);
    reset_slot(&mut g, Slot::R);
    let partition = PartitionMap::new(4, g.capacity(), PartitionStrategy::Modulo);
    let mut sim: DetSim<MarkMsg> = DetSim::new(4, SchedPolicy::Random { marking_bias: 0.5 }, seed);
    let mut state = MarkState::new();
    state.begin_r(mode);
    let root = g.root().unwrap();
    sim.send(route(
        &partition,
        match mode {
            RMode::Simple => MarkMsg::Mark1 {
                v: root,
                par: MarkParent::RootPar,
            },
            RMode::Priority => MarkMsg::Mark2 {
                v: root,
                par: MarkParent::RootPar,
                prior: Priority::Vital,
            },
        },
    ));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
    let mut events = 0u64;
    let mut buf = Vec::new();
    while let Some((_pe, _lane, msg)) = sim.next_event() {
        handle_mark(&mut state, &mut g, msg, &mut |m| buf.push(m));
        for m in buf.drain(..) {
            sim.send(route(&partition, m));
        }
        events += 1;
        if mutation_period > 0 && events.is_multiple_of(mutation_period) {
            let mut coop_buf = Vec::new();
            random_move(&mut rng, &mut state, &mut g, &mut |m| coop_buf.push(m));
            for m in coop_buf {
                sim.send(route(&partition, m));
            }
        }
        let pending: Vec<MarkMsg> = sim.iter_pending().map(|(_, _, m)| *m).collect();
        if let Err(e) = check_invariants(&g, Slot::R, &pending, &state) {
            panic!("mode {mode:?} seed {seed} period {mutation_period} event {events}: {e}");
        }
        assert!(events < 200_000, "marking diverged");
    }
    assert!(state.r_done);
    // Safety/liveness spot check: everything root-reachable is marked
    // (moves preserve R).
    let reach = dgr_graph::oracle::reachable_r(&g);
    for v in g.live_ids() {
        assert_eq!(reach.contains(v), g.mark(v, Slot::R).is_marked(), "{v}");
    }
}

#[test]
fn invariants_hold_under_mutation_mark1() {
    for seed in 0..8 {
        for period in [1, 3, 9] {
            stress(RMode::Simple, seed, period);
        }
    }
}

#[test]
fn invariants_hold_under_mutation_mark2() {
    for seed in 0..8 {
        for period in [1, 3, 9] {
            stress(RMode::Priority, seed, period);
        }
    }
}

#[test]
fn invariants_hold_without_mutation() {
    stress(RMode::Simple, 99, 0);
    stress(RMode::Priority, 99, 0);
}
