//! Direct unit tests for `check_priority_closure`: the full 3/2/1
//! downgrade-edge matrix on hand-marked two-vertex graphs, closure of
//! real `M_R` runs on downgrade chains and upgrade diamonds, and
//! detection of post-run corruption.

use dgr_core::driver::{run_mark2, MarkRunConfig};
use dgr_core::invariants::check_priority_closure;
use dgr_graph::{Color, GraphStore, NodeLabel, Priority, RequestKind, Slot, VertexId};

const PRIORS: [Priority; 3] = [Priority::Vital, Priority::Eager, Priority::Reserve];
const KINDS: [Option<RequestKind>; 3] = [None, Some(RequestKind::Eager), Some(RequestKind::Vital)];

/// Marks `v` in the R slot with the given priority, as a completed pass
/// would leave it.
fn mark(g: &mut GraphStore, v: VertexId, prior: Priority) {
    let s = g.mark_mut(v, Slot::R);
    s.color = Color::Marked;
    s.prior = prior;
}

/// One marked parent, one arc of the given request kind, one child.
fn pair(kind: Option<RequestKind>) -> (GraphStore, VertexId, VertexId) {
    let mut g = GraphStore::with_capacity(2);
    let p = g.alloc(NodeLabel::If).unwrap();
    let c = g.alloc(NodeLabel::lit_int(0)).unwrap();
    g.connect(p, c);
    g.vertex_mut(p).set_request_kind(0, kind);
    g.set_root(p);
    (g, p, c)
}

/// Every (parent priority × arc kind × child priority) combination:
/// closure demands `prior(c) ≥ min(prior(p), priority-of(kind))` — a
/// vital parent's vital arc needs a vital child, while any reserve link
/// (in the parent or on the arc) downgrades the requirement to 1.
#[test]
fn downgrade_edge_matrix() {
    for pp in PRIORS {
        for kind in KINDS {
            for cp in PRIORS {
                let (mut g, p, c) = pair(kind);
                mark(&mut g, p, pp);
                mark(&mut g, c, cp);
                let need = pp.min(Priority::of_request(kind));
                let got = check_priority_closure(&g);
                if cp >= need {
                    assert!(
                        got.is_ok(),
                        "parent {pp:?}, kind {kind:?}, child {cp:?}: \
                         unexpected violation {got:?}"
                    );
                } else {
                    let err = got.expect_err(&format!(
                        "parent {pp:?}, kind {kind:?}, child {cp:?}: \
                         closure should fail (needs ≥ {need:?})"
                    ));
                    assert!(err.contains("priority not closed"), "{err}");
                }
            }
        }
    }
}

/// A marked parent with an unmarked child is never closed, even through
/// an unrequested (reserve) arc.
#[test]
fn unmarked_child_is_a_violation() {
    for pp in PRIORS {
        for kind in KINDS {
            let (mut g, p, _c) = pair(kind);
            mark(&mut g, p, pp);
            let err = check_priority_closure(&g).expect_err("unmarked child must violate closure");
            assert!(err.contains("priority not closed"), "{err}");
        }
    }
}

/// Unmarked vertices impose nothing: a graph where nothing is marked is
/// trivially closed.
#[test]
fn unmarked_parents_impose_nothing() {
    let (g, _p, _c) = pair(Some(RequestKind::Vital));
    check_priority_closure(&g).unwrap();
}

/// `M_R` on a 3 → 2 → 1 downgrade chain ends closed, with the priorities
/// stepping down exactly at the downgrading arcs.
#[test]
fn mark2_downgrade_chain_is_closed() {
    let mut g = GraphStore::with_capacity(4);
    let root = g.alloc(NodeLabel::If).unwrap();
    let a = g.alloc(NodeLabel::If).unwrap();
    let b = g.alloc(NodeLabel::If).unwrap();
    let c = g.alloc(NodeLabel::lit_int(0)).unwrap();
    g.connect(root, a);
    g.vertex_mut(root)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.connect(a, b);
    g.vertex_mut(a)
        .set_request_kind(0, Some(RequestKind::Eager));
    g.connect(b, c);
    g.set_root(root);

    run_mark2(&mut g, &MarkRunConfig::default());
    check_priority_closure(&g).unwrap();
    let prior = |v| g.mark(v, Slot::R).prior;
    assert_eq!(prior(root), Priority::Vital);
    assert_eq!(prior(a), Priority::Vital);
    assert_eq!(prior(b), Priority::Eager);
    assert_eq!(prior(c), Priority::Reserve);
}

/// A diamond where one path is all-vital and the other downgrades: the
/// shared sink takes the max over paths, and the result is still closed.
#[test]
fn mark2_upgrade_diamond_is_closed() {
    let mut g = GraphStore::with_capacity(4);
    let root = g.alloc(NodeLabel::If).unwrap();
    let slow = g.alloc(NodeLabel::If).unwrap();
    let sink = g.alloc(NodeLabel::lit_int(0)).unwrap();
    g.connect(root, slow);
    g.vertex_mut(root)
        .set_request_kind(0, Some(RequestKind::Eager));
    g.connect(slow, sink);
    g.vertex_mut(slow)
        .set_request_kind(0, Some(RequestKind::Eager));
    g.connect(root, sink);
    g.vertex_mut(root)
        .set_request_kind(1, Some(RequestKind::Vital));
    g.set_root(root);

    run_mark2(&mut g, &MarkRunConfig::default());
    check_priority_closure(&g).unwrap();
    assert_eq!(g.mark(slow, Slot::R).prior, Priority::Eager);
    assert_eq!(g.mark(sink, Slot::R).prior, Priority::Vital);
}

/// Corrupting one priority after a clean run is caught, naming the edge.
#[test]
fn detects_downgraded_vertex_after_run() {
    let mut g = GraphStore::with_capacity(2);
    let root = g.alloc(NodeLabel::If).unwrap();
    let child = g.alloc(NodeLabel::lit_int(0)).unwrap();
    g.connect(root, child);
    g.vertex_mut(root)
        .set_request_kind(0, Some(RequestKind::Vital));
    g.set_root(root);

    run_mark2(&mut g, &MarkRunConfig::default());
    check_priority_closure(&g).unwrap();
    g.mark_mut(child, Slot::R).prior = Priority::Reserve;
    let err = check_priority_closure(&g).unwrap_err();
    assert!(err.contains("priority not closed"), "{err}");
}
