//! Pins the zero-cost contract of the default build: without the
//! `telemetry` feature, the registry the marking hot loops are compiled
//! against is a zero-sized no-op, so instrumentation can hide no atomics
//! (or any state at all) behind the calls in `run_pass` and the threaded
//! mark loop. The `telemetry`-on counterpart checks the same sites do
//! record.

use dgr_core::driver::{run_mark1_with, MarkRunConfig};
use dgr_graph::{GraphStore, NodeLabel};
use dgr_telemetry::{CounterId, Registry};

fn chain(n: i64) -> GraphStore {
    let mut g = GraphStore::with_capacity(n as usize);
    let ids: Vec<_> = (0..n)
        .map(|i| g.alloc(NodeLabel::lit_int(i)).unwrap())
        .collect();
    for w in ids.windows(2) {
        g.connect(w[0], w[1]);
    }
    g.set_root(ids[0]);
    g
}

#[cfg(not(feature = "telemetry"))]
mod feature_off {
    use super::*;

    /// The registry type the mark hot loop was compiled against is
    /// zero-sized — the type-layer proof that a default build carries no
    /// telemetry atomics in the hot path.
    #[test]
    fn registry_is_zero_sized() {
        assert_eq!(std::mem::size_of::<Registry>(), 0);
        assert_eq!(std::mem::size_of::<dgr_telemetry::PeShard>(), 0);
        assert_eq!(std::mem::size_of::<dgr_telemetry::SpanGuard<'_>>(), 0);
    }

    /// The heartbeat handle drivers hold (`GcDriver::attach_heartbeat`,
    /// the observed threaded entry points) is zero-sized and silent:
    /// beating it never reaches the shared pulse it was built from.
    #[test]
    fn heartbeat_handle_is_zero_sized_and_silent() {
        use dgr_telemetry::heartbeat::Heartbeat;
        use dgr_telemetry::{HeartbeatHandle, Phase};
        assert_eq!(std::mem::size_of::<HeartbeatHandle>(), 0);
        let pulse = std::sync::Arc::new(Heartbeat::new());
        let handle = HeartbeatHandle::from_shared(std::sync::Arc::clone(&pulse));
        assert!(!handle.enabled());
        handle.begin_phase(1, Phase::Mr);
        handle.progress(10);
        handle.end_phase();
        handle.cycle_done();
        assert_eq!(pulse.beats(), 0, "no beat reached the shared pulse");
        assert_eq!(pulse.progress_total(), 0);
    }

    /// Flow stamping adds no bytes to hot-path messages: the causal tag
    /// the threaded runtime pairs with every work item is zero-sized, so
    /// the `(FlowTag, MarkMsg)` it queues has the layout of the bare
    /// message.
    #[test]
    fn flow_tags_add_nothing_to_messages() {
        use dgr_core::MarkMsg;
        use dgr_telemetry::FlowTag;
        assert_eq!(std::mem::size_of::<FlowTag>(), 0);
        assert_eq!(
            std::mem::size_of::<(FlowTag, MarkMsg)>(),
            std::mem::size_of::<MarkMsg>()
        );
    }

    /// The lifecycle tracker collectors thread through their reclaim
    /// paths is zero-sized and silent: census, reclaim and meter calls
    /// vanish, and a closed cycle reports the default ledger.
    #[test]
    fn lifecycle_tracker_is_zero_sized_and_silent() {
        use dgr_telemetry::{CycleLifecycle, LifecycleTracker};
        assert_eq!(std::mem::size_of::<LifecycleTracker>(), 0);
        let mut lc = LifecycleTracker::new();
        assert!(!lc.enabled());
        lc.begin_cycle(3);
        lc.garbage_vertex(7);
        lc.reclaim_vertex(7);
        lc.meter_msgs(10, 20, 60);
        assert_eq!(lc.end_cycle(), CycleLifecycle::default());
        assert!(lc.snapshot().is_empty());
        assert!(lc.worst_floaters(4).is_empty());
    }

    /// The heap tracker the reduction system stamps allocation traffic
    /// through is zero-sized and silent: alloc/free/reweight, trigger
    /// tallies and cycle closes all vanish, and a closed cycle reports
    /// the default ledger.
    #[test]
    fn heap_tracker_is_zero_sized_and_silent() {
        use dgr_telemetry::{CycleHeap, HeapTracker, TriggerCause};
        assert_eq!(std::mem::size_of::<HeapTracker>(), 0);
        let mut hp = HeapTracker::new(4);
        assert!(!hp.enabled());
        hp.alloc(0, 7, 64);
        hp.reweight(0, 7, 64, 96);
        hp.free(0, 7, 96);
        hp.record_trigger(TriggerCause::HeapBytes);
        hp.begin_episode();
        assert_eq!(hp.close_cycle(1), CycleHeap::default());
        assert_eq!(hp.live_bytes(), 0);
        assert_eq!(hp.peak_bytes(), 0);
        assert!(hp.snapshot().is_empty());
    }

    #[test]
    fn instrumented_pass_records_nothing() {
        let telem = Registry::new(4);
        let mut g = chain(32);
        let stats = run_mark1_with(&mut g, &MarkRunConfig::default(), &telem);
        assert_eq!(stats.marked, 32, "marking itself is unaffected");
        assert_eq!(telem.snapshot().counter_total(CounterId::MarkEvents), 0);
        assert!(telem.drain_events().is_empty());
        assert_eq!(telem.flows_in_flight(), 0, "flow bookkeeping is a no-op");
    }

    /// The scheduler state clock is silent feature-off: transitions read
    /// no clock, charge no bucket, and report no state — the steal
    /// runtime's per-iteration `sched_enter` calls compile away.
    #[test]
    fn state_clock_records_nothing() {
        use dgr_telemetry::SchedState;
        let telem = Registry::new(4);
        telem.sched_enter(0, SchedState::Work);
        telem.sched_enter(0, SchedState::Park);
        assert_eq!(telem.sched_current(0), None, "no state is ever in force");
        telem.sched_finish(0);
        assert!(telem.sched_snapshot(0).is_empty());
        let snap = telem.snapshot();
        assert!(snap.per_pe.is_empty(), "noop snapshot has no shards");
        assert_eq!(snap.merged().sched().total_ns(), 0);
        assert_eq!(snap.merged().sched().span_ns, 0);
    }
}

#[cfg(feature = "telemetry")]
mod feature_on {
    use super::*;

    /// The same handle API, feature-on: every beat reaches the shared
    /// pulse a watchdog would poll.
    #[test]
    fn heartbeat_handle_reaches_the_shared_pulse() {
        use dgr_telemetry::{HeartbeatHandle, Phase};
        let handle = HeartbeatHandle::new();
        assert!(handle.enabled());
        handle.begin_phase(2, Phase::Mr);
        handle.progress(10);
        handle.end_phase();
        handle.cycle_done();
        let pulse = handle.shared();
        assert_eq!(pulse.beats(), 3, "begin + end + cycle_done");
        assert_eq!(pulse.progress_total(), 10);
        assert_eq!(pulse.cycle(), 2);
        assert_eq!(pulse.phase(), None, "back to idle after end_phase");
    }

    /// The same state-clock API, feature-on: transitions charge buckets
    /// and the per-PE clock rides the metrics snapshot.
    #[test]
    fn state_clock_records_time() {
        use dgr_telemetry::SchedState;
        let telem = Registry::new(2);
        telem.sched_enter(1, SchedState::Work);
        assert_eq!(telem.sched_current(1), Some(SchedState::Work));
        std::thread::sleep(std::time::Duration::from_millis(1));
        telem.sched_finish(1);
        let sched = *telem.snapshot().per_pe[1].sched();
        assert!(sched.state_ns(SchedState::Work) >= 1_000_000);
        assert_eq!(
            sched.total_ns(),
            sched.span_ns,
            "a finished episode accounts for its whole span"
        );
    }

    /// The same tracker API, feature-on: a census stamp turns into an
    /// exact latency at reclaim.
    #[test]
    fn lifecycle_tracker_records_exact_latencies() {
        use dgr_telemetry::LifecycleTracker;
        let mut lc = LifecycleTracker::new();
        assert!(lc.enabled());
        lc.begin_cycle(1);
        lc.garbage_vertex(7);
        lc.end_cycle();
        lc.begin_cycle(4);
        lc.garbage_vertex(7);
        lc.reclaim_vertex(7);
        let led = lc.end_cycle();
        assert_eq!(led.reclaimed, 1);
        assert_eq!(led.exact, 1);
        assert_eq!(led.latency_sum, 3, "stamped at cycle 1, freed at 4");
        let s = lc.snapshot();
        assert_eq!(s.latency_max, 3);
        assert_eq!(s.float_now, 0);
    }

    /// The same tracker API, feature-on: an allocation stamps its byte
    /// weight, the clocks move, and the eventual free is exact.
    #[test]
    fn heap_tracker_records_exact_byte_traffic() {
        use dgr_telemetry::{HeapTracker, TriggerCause};
        let mut hp = HeapTracker::new(2);
        assert!(hp.enabled());
        hp.alloc(1, 7, 64);
        hp.reweight(1, 7, 64, 96);
        assert_eq!(hp.live_bytes(), 96);
        assert_eq!(hp.peak_bytes(), 96);
        hp.free(1, 7, 96);
        hp.record_trigger(TriggerCause::HeapBytes);
        let cy = hp.close_cycle(1);
        assert_eq!(cy.exact_bytes, 96, "the stamp followed the reweight");
        assert_eq!(cy.peak, 96);
        assert_eq!(cy.live_end, 0);
        let s = hp.snapshot();
        assert_eq!(s.alloc_bytes, 96, "64 allocated + 32 growth");
        assert_eq!(s.per_pe[1].peak, 96);
        assert_eq!(s.trigger_heap, 1);
    }

    #[test]
    fn instrumented_pass_records_events_and_counters() {
        let telem = Registry::new(4);
        let mut g = chain(32);
        let stats = run_mark1_with(&mut g, &MarkRunConfig::default(), &telem);
        assert_eq!(
            telem.snapshot().counter_total(CounterId::MarkEvents),
            stats.events,
            "every delivered marking event was counted"
        );
        let events = telem.drain_events();
        assert!(
            events.iter().any(|e| e.name == "M_R"),
            "the pass span was recorded"
        );
        let sends = events
            .iter()
            .filter(|e| e.kind == dgr_telemetry::EventKind::FlowSend)
            .count();
        let recvs = events
            .iter()
            .filter(|e| e.kind == dgr_telemetry::EventKind::FlowRecv)
            .count();
        assert!(sends > 0, "marking traffic was flow-stamped");
        assert_eq!(sends, recvs, "every stamped send was resolved");
        assert_eq!(telem.flows_in_flight(), 0, "no flow left open");
    }
}
