//! Property: causal flow stamping is a perfect matching. Over random
//! graphs, partitions and randomized schedules in the deterministic
//! simulator, every `flow_recv` the marking pass records resolves
//! exactly one prior `flow_send` — no orphan deliveries, no duplicated
//! or reused edges — and Lamport clocks respect the send/recv order.
//!
//! Without the `telemetry` feature the same drive records nothing at
//! all, which the property also pins (the stamping must compile away,
//! not half-record).

use std::collections::HashMap;

use dgr_core::driver::{run_mark1_with, MarkRunConfig};
use dgr_graph::{GraphStore, NodeLabel, PartitionStrategy};
use dgr_sim::SchedPolicy;
use dgr_telemetry::{EventKind, Registry, TELEMETRY_ENABLED};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

fn graph_strategy(max_n: usize) -> impl Strategy<Value = RandomGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..n * 3)
            .prop_map(move |edges| RandomGraph { n, edges })
    })
}

fn build(rg: &RandomGraph) -> GraphStore {
    let mut g = GraphStore::with_capacity(rg.n);
    let ids: Vec<_> = (0..rg.n)
        .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
        .collect();
    for &(a, b) in &rg.edges {
        g.connect(ids[a], ids[b]);
    }
    g.set_root(ids[0]);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_every_delivery_resolves_exactly_one_prior_send(
        rg in graph_strategy(40),
        seed in 0u64..500,
        pes in 1u16..6,
    ) {
        let mut g = build(&rg);
        let telem = Registry::new(pes);
        let cfg = MarkRunConfig {
            num_pes: pes,
            policy: SchedPolicy::Random { marking_bias: 0.5 },
            seed,
            partition: PartitionStrategy::Modulo,
            check_invariants: false,
        };
        let stats = run_mark1_with(&mut g, &cfg, &telem);
        let events = telem.drain_events();
        if !TELEMETRY_ENABLED {
            prop_assert!(events.is_empty(), "off build must record nothing");
            return Ok(());
        }

        // Collect the flow endpoints. Ids must be unique per kind
        // (no reused edges) and pair one-to-one.
        let mut sends: HashMap<u64, u64> = HashMap::new(); // id -> lamport
        let mut recvs: HashMap<u64, u64> = HashMap::new();
        for e in &events {
            match e.kind {
                EventKind::FlowSend => {
                    prop_assert!(
                        sends.insert(e.value, e.lamport).is_none(),
                        "flow id {} stamped on two sends", e.value
                    );
                }
                EventKind::FlowRecv => {
                    prop_assert!(
                        recvs.insert(e.value, e.lamport).is_none(),
                        "flow id {} resolved twice", e.value
                    );
                }
                _ => {}
            }
        }
        prop_assert_eq!(
            sends.len(),
            stats.events as usize,
            "one flow per delivered marking event"
        );
        for (id, recv_lamport) in &recvs {
            let send_lamport = sends.get(id);
            prop_assert!(
                send_lamport.is_some(),
                "delivery of flow {} has no prior send", id
            );
            prop_assert!(
                recv_lamport > send_lamport.unwrap(),
                "flow {}: recv lamport {} not after send lamport {}",
                id, recv_lamport, send_lamport.unwrap()
            );
        }
        // The pass runs to quiescence, so nothing stays in flight.
        prop_assert_eq!(sends.len(), recvs.len(), "every send was delivered");
        prop_assert_eq!(telem.flows_in_flight(), 0);
    }
}
