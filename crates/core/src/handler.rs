//! Execution of marking tasks: `mark1`, `mark2`, `mark3` and `return1`.

use dgr_graph::{Color, GraphStore, MarkParent, Priority, Slot, VertexId};

use crate::msg::MarkMsg;
use crate::state::MarkState;

/// Executes one marking task atomically.
///
/// Spawned tasks are handed to `sink`, which the driver routes to the PE
/// owning the destination vertex. The task types follow Figures 4-1, 5-1
/// and 5-3 of the paper; see the module documentation of
/// [`crate`](crate#) for the correspondence.
///
/// Executing a mark task addressed to a vertex that is (erroneously)
/// on the free list is treated as marking a leaf that is already marked:
/// an immediate return. A correct system never produces such a task; the
/// behavior is defensive.
pub fn handle_mark(
    state: &mut MarkState,
    g: &mut GraphStore,
    msg: MarkMsg,
    sink: &mut dyn FnMut(MarkMsg),
) {
    match msg {
        MarkMsg::Mark1 { v, par } => mark_simple(g, Slot::R, v, par, sink),
        MarkMsg::Mark3 { v, par } => mark_simple(g, Slot::T, v, par, sink),
        MarkMsg::Mark2 { v, par, prior } => mark2(g, v, par, prior, sink),
        MarkMsg::Return { slot, to } => return1(state, g, slot, to, sink),
    }
}

/// `mark1` / `mark3` (Figures 4-1 and 5-3): identical control flow, only
/// the slot and the traced child set differ.
fn mark_simple(
    g: &mut GraphStore,
    slot: Slot,
    v: VertexId,
    par: MarkParent,
    sink: &mut dyn FnMut(MarkMsg),
) {
    let mk = |c: VertexId, p: MarkParent| match slot {
        Slot::R => MarkMsg::Mark1 { v: c, par: p },
        Slot::T => MarkMsg::Mark3 { v: c, par: p },
    };
    if g.vertex(v).is_free() || !g.mark(v, slot).is_unmarked() {
        sink(MarkMsg::Return { slot, to: par });
        return;
    }
    // touch(v); mt-par(v) := par
    {
        let s = g.mark_mut(v, slot);
        s.color = Color::Transient;
        s.mt_par = Some(par);
    }
    // Spawn a mark for every traced child without materializing the child
    // list — one task per marked vertex makes this the hottest allocation
    // site of a pass.
    let mut spawned = 0u32;
    {
        let vert = g.vertex(v);
        let mut visit = |c: VertexId| {
            spawned += 1;
            sink(mk(c, MarkParent::Vertex(v)));
        };
        match slot {
            Slot::R => vert.for_each_r_child(&mut visit),
            Slot::T => vert.for_each_t_child(&mut visit),
        }
    }
    let s = g.mark_mut(v, slot);
    s.mt_cnt += spawned;
    if s.mt_cnt == 0 {
        s.color = Color::Marked;
        sink(MarkMsg::Return { slot, to: par });
    }
}

/// `mark2` (Figure 5-1): priority marking for `M_R`.
fn mark2(
    g: &mut GraphStore,
    v: VertexId,
    par: MarkParent,
    prior: Priority,
    sink: &mut dyn FnMut(MarkMsg),
) {
    if g.vertex(v).is_free() {
        sink(MarkMsg::Return {
            slot: Slot::R,
            to: par,
        });
        return;
    }
    let slot = g.mark(v, Slot::R);
    if slot.is_unmarked() {
        modify(g, v, par, prior, sink);
    } else if prior <= slot.prior {
        sink(MarkMsg::Return {
            slot: Slot::R,
            to: par,
        });
    } else {
        // Re-mark with the higher priority. If the vertex is mid-marking,
        // its old parent's claim is settled early with a return; the new
        // parent's claim is settled when the (merged) subtree completes.
        if slot.is_transient() {
            let old_par = slot.mt_par.expect("transient vertex has a parent");
            sink(MarkMsg::Return {
                slot: Slot::R,
                to: old_par,
            });
        }
        modify(g, v, par, prior, sink);
    }
}

/// `modify(v, par, prior)` from Figure 5-1.
fn modify(
    g: &mut GraphStore,
    v: VertexId,
    par: MarkParent,
    prior: Priority,
    sink: &mut dyn FnMut(MarkMsg),
) {
    {
        let s = g.mark_mut(v, Slot::R);
        s.color = Color::Transient;
        s.mt_par = Some(par);
        s.prior = prior;
    }
    let kids = g.vertex(v).r_children_kinds();
    let spawned = kids.len() as u32;
    for (c, kind) in kids {
        sink(MarkMsg::Mark2 {
            v: c,
            par: MarkParent::Vertex(v),
            prior: prior.min(Priority::of_request(kind)),
        });
    }
    // `+=`, not `=`: when re-marking a transient vertex, marks from the
    // previous traversal are still outstanding and their returns must be
    // absorbed before the vertex completes.
    let s = g.mark_mut(v, Slot::R);
    s.mt_cnt += spawned;
    if s.mt_cnt == 0 {
        s.color = Color::Marked;
        sink(MarkMsg::Return {
            slot: Slot::R,
            to: par,
        });
    }
}

/// `return1` (Figure 4-1), extended with the virtual `troot` of `M_T`.
fn return1(
    state: &mut MarkState,
    g: &mut GraphStore,
    slot: Slot,
    to: MarkParent,
    sink: &mut dyn FnMut(MarkMsg),
) {
    match to {
        MarkParent::RootPar => {
            state.note_rootpar_return();
        }
        // The virtual "extra" root: `troot` for M_T, the orphan-mark
        // absorber for the R-side process.
        MarkParent::TaskRootPar => match slot {
            Slot::T => state.return_to_troot(),
            Slot::R => state.return_r_extra(),
        },
        MarkParent::Vertex(v) => {
            let s = g.mark_mut(v, slot);
            debug_assert!(s.mt_cnt > 0, "return to {v} with mt-cnt 0");
            s.mt_cnt -= 1;
            if s.mt_cnt == 0 {
                s.color = Color::Marked;
                let par = s.mt_par.expect("completing vertex has a parent");
                sink(MarkMsg::Return { slot, to: par });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::{NodeLabel, RequestKind};

    /// Runs messages to quiescence with a simple FIFO queue (single PE).
    fn drain(state: &mut MarkState, g: &mut GraphStore, initial: MarkMsg) -> u64 {
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(initial);
        let mut events = 0;
        while let Some(m) = queue.pop_front() {
            let mut buf = Vec::new();
            handle_mark(state, g, m, &mut |m| buf.push(m));
            queue.extend(buf);
            events += 1;
            assert!(events < 100_000, "marking diverged");
        }
        events
    }

    #[test]
    fn mark1_marks_reachable_only() {
        let mut g = GraphStore::with_capacity(8);
        let a = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let b = g.alloc(NodeLabel::lit_int(2)).unwrap();
        let root = g.alloc(NodeLabel::If).unwrap();
        let stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
        g.connect(root, a);
        g.connect(root, b);
        g.set_root(root);

        let mut state = MarkState::new();
        state.begin_r(crate::RMode::Simple);
        drain(
            &mut state,
            &mut g,
            MarkMsg::Mark1 {
                v: root,
                par: MarkParent::RootPar,
            },
        );
        assert!(state.r_done);
        for v in [root, a, b] {
            assert!(g.mark(v, Slot::R).is_marked());
            assert_eq!(g.mark(v, Slot::R).mt_cnt, 0);
        }
        assert!(g.mark(stray, Slot::R).is_unmarked());
    }

    #[test]
    fn mark1_terminates_on_cycles() {
        let mut g = GraphStore::with_capacity(4);
        let x = g.alloc(NodeLabel::If).unwrap();
        let y = g.alloc(NodeLabel::If).unwrap();
        g.connect(x, y);
        g.connect(y, x);
        g.connect(x, x);
        g.set_root(x);
        let mut state = MarkState::new();
        state.begin_r(crate::RMode::Simple);
        drain(
            &mut state,
            &mut g,
            MarkMsg::Mark1 {
                v: x,
                par: MarkParent::RootPar,
            },
        );
        assert!(state.r_done);
        assert!(g.mark(x, Slot::R).is_marked() && g.mark(y, Slot::R).is_marked());
    }

    #[test]
    fn mark1_single_leaf_root() {
        let mut g = GraphStore::with_capacity(1);
        let root = g.alloc(NodeLabel::lit_int(5)).unwrap();
        g.set_root(root);
        let mut state = MarkState::new();
        state.begin_r(crate::RMode::Simple);
        let events = drain(
            &mut state,
            &mut g,
            MarkMsg::Mark1 {
                v: root,
                par: MarkParent::RootPar,
            },
        );
        assert!(state.r_done);
        assert_eq!(events, 2, "one mark, one return");
    }

    #[test]
    fn mark2_assigns_bottleneck_priorities() {
        // root -v-> a -e-> b ; root -r-> c
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::If).unwrap();
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::lit_int(0)).unwrap();
        let c = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(root, a);
        g.vertex_mut(root)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(a, b);
        g.vertex_mut(a)
            .set_request_kind(0, Some(RequestKind::Eager));
        g.connect(root, c);
        g.set_root(root);

        let mut state = MarkState::new();
        state.begin_r(crate::RMode::Priority);
        drain(
            &mut state,
            &mut g,
            MarkMsg::Mark2 {
                v: root,
                par: MarkParent::RootPar,
                prior: Priority::Vital,
            },
        );
        assert!(state.r_done);
        assert_eq!(g.mark(root, Slot::R).prior, Priority::Vital);
        assert_eq!(g.mark(a, Slot::R).prior, Priority::Vital);
        assert_eq!(g.mark(b, Slot::R).prior, Priority::Eager);
        assert_eq!(g.mark(c, Slot::R).prior, Priority::Reserve);
    }

    #[test]
    fn mark2_higher_priority_remarks_shared_subgraph() {
        // root reaches d eagerly first (short path), then vitally (longer
        // path). With a FIFO queue the eager mark arrives first; the vital
        // one must re-mark d and its descendants.
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::If).unwrap();
        let d = g.alloc(NodeLabel::If).unwrap();
        let below = g.alloc(NodeLabel::lit_int(0)).unwrap();
        let mid = g.alloc(NodeLabel::If).unwrap();
        // root -e-> d, root -v-> mid -v-> d, d -v-> below
        g.connect(root, d);
        g.vertex_mut(root)
            .set_request_kind(0, Some(RequestKind::Eager));
        g.connect(root, mid);
        g.vertex_mut(root)
            .set_request_kind(1, Some(RequestKind::Vital));
        g.connect(mid, d);
        g.vertex_mut(mid)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(d, below);
        g.vertex_mut(d)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.set_root(root);

        let mut state = MarkState::new();
        state.begin_r(crate::RMode::Priority);
        drain(
            &mut state,
            &mut g,
            MarkMsg::Mark2 {
                v: root,
                par: MarkParent::RootPar,
                prior: Priority::Vital,
            },
        );
        assert!(state.r_done);
        assert_eq!(g.mark(d, Slot::R).prior, Priority::Vital, "upgraded");
        assert_eq!(
            g.mark(below, Slot::R).prior,
            Priority::Vital,
            "descendant upgraded"
        );
        // All mt-cnts settled.
        for v in [root, d, mid, below] {
            assert_eq!(g.mark(v, Slot::R).mt_cnt, 0);
            assert!(g.mark(v, Slot::R).is_marked());
        }
    }

    #[test]
    fn mark3_traces_t_children_only() {
        // a requested b (so the a→b arc is NOT traced forward), b has
        // requester a (traced backward), a has an unrequested arc to c.
        let mut g = GraphStore::with_capacity(8);
        let a = g.alloc(NodeLabel::Prim(dgr_graph::PrimOp::Add)).unwrap();
        let b = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let c = g.alloc(NodeLabel::lit_int(2)).unwrap();
        let d = g.alloc(NodeLabel::lit_int(3)).unwrap();
        g.connect(a, b);
        g.vertex_mut(a)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(a, c);
        g.vertex_mut(b)
            .add_requester(dgr_graph::Requester::Vertex(a));
        // d is disconnected entirely.
        let _ = d;

        let mut state = MarkState::new();
        state.begin_t(1);
        drain(
            &mut state,
            &mut g,
            MarkMsg::Mark3 {
                v: b,
                par: MarkParent::TaskRootPar,
            },
        );
        assert!(state.t_done);
        assert!(g.mark(b, Slot::T).is_marked());
        assert!(g.mark(a, Slot::T).is_marked(), "via requested(b)");
        assert!(g.mark(c, Slot::T).is_marked(), "via unrequested arc");
        assert!(g.mark(d, Slot::T).is_unmarked());
        // R slot untouched.
        assert!(g.mark(a, Slot::R).is_unmarked());
    }

    #[test]
    fn mark_on_free_vertex_returns_without_touching() {
        let mut g = GraphStore::with_capacity(2);
        let a = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.free(a);
        let mut state = MarkState::new();
        state.begin_r(crate::RMode::Simple);
        let mut out = Vec::new();
        handle_mark(
            &mut state,
            &mut g,
            MarkMsg::Mark1 {
                v: a,
                par: MarkParent::RootPar,
            },
            &mut |m| out.push(m),
        );
        assert_eq!(
            out,
            vec![MarkMsg::Return {
                slot: Slot::R,
                to: MarkParent::RootPar
            }]
        );
        assert!(g.mark(a, Slot::R).is_unmarked());
    }

    #[test]
    fn returns_to_troot_count_down() {
        let mut g = GraphStore::with_capacity(1);
        let mut state = MarkState::new();
        state.begin_t(2);
        let mut sink = |_m: MarkMsg| panic!("no spawns expected");
        handle_mark(
            &mut state,
            &mut g,
            MarkMsg::Return {
                slot: Slot::T,
                to: MarkParent::TaskRootPar,
            },
            &mut sink,
        );
        assert!(!state.t_done);
        handle_mark(
            &mut state,
            &mut g,
            MarkMsg::Return {
                slot: Slot::T,
                to: MarkParent::TaskRootPar,
            },
            &mut sink,
        );
        assert!(state.t_done);
    }
}
