//! Marking task messages.

use dgr_graph::{MarkParent, Priority, Slot, VertexId};
use serde::{Deserialize, Serialize};

/// A marking task, represented (like every task) as a message `<s, d>`:
/// the destination vertex is where the task executes, the parent is the
/// source in the marking tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarkMsg {
    /// `mark1(v, par)` — Figure 4-1: the simplified algorithm, tracing
    /// `args(v)` in the R slot.
    Mark1 {
        /// The vertex to mark.
        v: VertexId,
        /// The spawning vertex (parent in the marking tree).
        par: MarkParent,
    },
    /// `mark2(v, par, prior)` — Figure 5-1: priority marking for `M_R`.
    Mark2 {
        /// The vertex to mark.
        v: VertexId,
        /// The spawning vertex.
        par: MarkParent,
        /// The priority carried by this mark task.
        prior: Priority,
    },
    /// `mark3(v, par)` — Figure 5-3: task marking for `M_T`, tracing
    /// `requested(v) ∪ (args(v) − req-args(v))` in the T slot.
    Mark3 {
        /// The vertex to mark.
        v: VertexId,
        /// The spawning vertex.
        par: MarkParent,
    },
    /// `return1(to)` — the backward task. `slot` selects whose marking
    /// tree (and whose `done` flag) the return belongs to.
    Return {
        /// Which marking process's tree is being returned through.
        slot: Slot,
        /// The marking-tree parent receiving the return.
        to: MarkParent,
    },
}

impl MarkMsg {
    /// The vertex at which this task executes, used to route the message
    /// to the owning PE. Returns `None` for returns addressed to the dummy
    /// roots (`rootpar` / the virtual `troot`), which execute wherever the
    /// marking process was initiated.
    pub fn dest_vertex(&self) -> Option<VertexId> {
        match *self {
            MarkMsg::Mark1 { v, .. } | MarkMsg::Mark2 { v, .. } | MarkMsg::Mark3 { v, .. } => {
                Some(v)
            }
            MarkMsg::Return { to, .. } => to.as_vertex(),
        }
    }

    /// The slot this message operates on.
    pub fn slot(&self) -> Slot {
        match *self {
            MarkMsg::Mark1 { .. } | MarkMsg::Mark2 { .. } => Slot::R,
            MarkMsg::Mark3 { .. } => Slot::T,
            MarkMsg::Return { slot, .. } => slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_vertex_routes_marks_to_target() {
        let v = VertexId::new(3);
        let m = MarkMsg::Mark1 {
            v,
            par: MarkParent::RootPar,
        };
        assert_eq!(m.dest_vertex(), Some(v));
        assert_eq!(m.slot(), Slot::R);
    }

    #[test]
    fn dest_vertex_of_dummy_returns_is_none() {
        let r = MarkMsg::Return {
            slot: Slot::T,
            to: MarkParent::TaskRootPar,
        };
        assert_eq!(r.dest_vertex(), None);
        assert_eq!(r.slot(), Slot::T);
        let r2 = MarkMsg::Return {
            slot: Slot::R,
            to: MarkParent::Vertex(VertexId::new(1)),
        };
        assert_eq!(r2.dest_vertex(), Some(VertexId::new(1)));
    }

    #[test]
    fn slots_match_figures() {
        let v = VertexId::new(0);
        assert_eq!(
            MarkMsg::Mark2 {
                v,
                par: MarkParent::RootPar,
                prior: Priority::Vital
            }
            .slot(),
            Slot::R
        );
        assert_eq!(
            MarkMsg::Mark3 {
                v,
                par: MarkParent::TaskRootPar
            }
            .slot(),
            Slot::T
        );
    }
}
