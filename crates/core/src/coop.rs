//! Cooperating mutator primitives (Figure 4-2).
//!
//! The reduction process may not mutate the graph behind the marking
//! process's back: a mutation that makes a vertex reachable only through an
//! already-marked region would cause the vertex to be missed. These
//! wrappers perform the raw mutation *and* splice the extra marking
//! activity required to preserve the two marking invariants:
//!
//! 1. every transient vertex has an outstanding mark task on each child
//!    (reflected in `mt-cnt`), and
//! 2. a marked vertex never points to an unmarked vertex.
//!
//! Cooperation is needed per marking process and per edge view:
//! `add-reference` and `expand-node` change `args`, so they cooperate with
//! the R-side process exactly as in Figure 4-2; operations that create a
//! **T-arc** — adding a requester, or adding an unrequested arc — cooperate
//! with `M_T` through [`coop_t_arc`] while the arc's source is still being
//! traced (arcs grown out of already-finished vertices are covered by the
//! deadlock report's activity screen instead; see [`coop_t_arc`]).
//!
//! Setting [`MarkState::cooperation_enabled`] to `false` turns all of this
//! off, reproducing the static-graph assumption of the Chandy–Misra-style
//! algorithms the paper contrasts itself with; the T-abl experiment
//! measures the live vertices lost as a result.

use dgr_graph::{
    GraphError, GraphStore, MarkParent, Priority, Requester, Slot, Template, VertexId,
};

use crate::handler::handle_mark;
use crate::msg::MarkMsg;
use crate::state::{MarkState, RMode};

/// Builds the R-side mark task appropriate for the active mode. New arcs
/// are unrequested, so in priority mode the spawned mark carries
/// `min(prior, request-type) = Reserve`.
fn r_mark(mode: RMode, v: VertexId, par: MarkParent) -> MarkMsg {
    match mode {
        RMode::Simple => MarkMsg::Mark1 { v, par },
        RMode::Priority => MarkMsg::Mark2 {
            v,
            par,
            prior: Priority::Reserve,
        },
    }
}

/// `delete-reference(a, b)`: removes one `a → b` arc.
///
/// Deleting an arc can never invalidate the marking invariants (marks
/// already spawned on `b` simply return), so no cooperation is required —
/// exactly as in Figure 4-2. Returns `true` if an arc was removed.
pub fn delete_reference(g: &mut GraphStore, a: VertexId, b: VertexId) -> bool {
    g.disconnect(a, b)
}

/// *Dereference*: vertex `x` drops its (eager) interest in `y` — the arc
/// `x → y` is removed **and** `x` is removed from `requested(y)`
/// (Section 3.2). Any tasks below `y` whose destinations thereby leave `R`
/// become irrelevant and will be expunged by the next GC cycle.
pub fn dereference(g: &mut GraphStore, x: VertexId, y: VertexId) -> bool {
    let had_arc = g.disconnect(x, y);
    g.remove_requester(y, Requester::Vertex(x));
    had_arc
}

/// `add-reference(a, b, c)` (Figure 4-2): adds an arc `a → c`, where
/// `b ∈ children(a)` and `c ∈ children(b)` (three adjacent vertices; this
/// is how a vertex gains direct access to a grandchild, e.g. the head of a
/// cons cell it has just received).
///
/// Cooperates with the active R-side process per the paper, and with `M_T`
/// (the new arc is unrequested, hence a T-arc).
///
/// # Errors
///
/// Returns [`GraphError::NotAdjacent`] if the adjacency precondition fails;
/// the graph is unchanged in that case.
pub fn add_reference(
    state: &mut MarkState,
    g: &mut GraphStore,
    a: VertexId,
    b: VertexId,
    c: VertexId,
    sink: &mut dyn FnMut(MarkMsg),
) -> Result<(), GraphError> {
    let b_is_child = g.vertex(a).r_children().contains(&b);
    let c_is_grandchild = g.vertex(b).r_children().contains(&c);
    if !b_is_child || !c_is_grandchild {
        return Err(GraphError::NotAdjacent { a, b, c });
    }
    if state.cooperation_enabled {
        if let Some(mode) = state.r_mode {
            let sa = g.mark(a, Slot::R).color;
            let sb = g.mark(b, Slot::R).color;
            use dgr_graph::Color::*;
            if sa == Transient && sb == Unmarked {
                // Marking may already have passed a without seeing c via
                // this new arc; hang an extra mark for c on a.
                g.mark_mut(a, Slot::R).mt_cnt += 1;
                sink(r_mark(mode, c, MarkParent::Vertex(a)));
            } else if sa == Marked && sb == Transient {
                // a is marked, so c must not remain unmarked once the arc
                // exists: execute the mark synchronously, hung on the
                // transient b.
                g.mark_mut(b, Slot::R).mt_cnt += 1;
                let msg = r_mark(mode, c, MarkParent::Vertex(b));
                handle_mark(state, g, msg, sink);
            }
            // All other cases need no action: if b is transient it already
            // owes a mark to each of its children including c; if both are
            // marked, c is at least transient by invariant 2; if a is
            // unmarked, marking has not passed it yet.
        }
        if state.t_active {
            coop_t_arc(state, g, a, c, sink);
        }
    }
    g.connect(a, c);
    Ok(())
}

/// Cooperation for the creation of a **T-arc** `from → to` (a new
/// requester, or a new unrequested arc): if `from` is mid-marking
/// (T-transient), the extra mark is hung on `from` so the arc is traced
/// before `from` completes.
///
/// If `from` is already T-**marked**, no mark is spawned. `M_T` exists
/// solely to find deadlocked vertices (Section 6), and its snapshot
/// semantics tolerate task reachability that arises *after* a vertex was
/// finished: the deadlock report screens out any vertex with task
/// activity since the pass began ([`Vertex::touched`]) or with a computed
/// value, and a vertex in `R_v` without either was necessarily covered by
/// the pass's seeds (its vital request either predates the pass — making
/// it a task endpoint — or stamps it). Escalating here instead (re-seeding
/// the virtual `troot`) would make `M_T` chase the mutator indefinitely:
/// every request to an already-finished vertex would re-arm termination,
/// and under an expanding speculative workload the pass would never end.
///
/// [`Vertex::touched`]: dgr_graph::Vertex::touched
pub fn coop_t_arc(
    state: &mut MarkState,
    g: &mut GraphStore,
    from: VertexId,
    to: VertexId,
    sink: &mut dyn FnMut(MarkMsg),
) {
    if !state.cooperation_enabled || !state.t_active {
        return;
    }
    if g.mark(from, Slot::T).is_transient() {
        g.mark_mut(from, Slot::T).mt_cnt += 1;
        sink(MarkMsg::Mark3 {
            v: to,
            par: MarkParent::Vertex(from),
        });
    }
}

/// Cooperation for the creation of a plain **R-arc** `from → to` outside
/// the three-adjacent-vertices pattern of `add-reference` (e.g. the rewiring
/// performed when an over-saturated application is split). If `from` is
/// transient the extra mark hangs on `from`; if `from` is already marked
/// there is no transient vertex to absorb the return, so the mark hangs on
/// the process's virtual root and is executed synchronously to restore
/// invariant 2.
pub fn coop_r_arc(
    state: &mut MarkState,
    g: &mut GraphStore,
    from: VertexId,
    to: VertexId,
    sink: &mut dyn FnMut(MarkMsg),
) {
    if !state.cooperation_enabled {
        return;
    }
    let Some(mode) = state.r_mode else { return };
    match g.mark(from, Slot::R).color {
        dgr_graph::Color::Transient => {
            g.mark_mut(from, Slot::R).mt_cnt += 1;
            sink(r_mark(mode, to, MarkParent::Vertex(from)));
        }
        dgr_graph::Color::Marked => {
            state.add_r_extra();
            let msg = r_mark(mode, to, MarkParent::TaskRootPar);
            handle_mark(state, g, msg, sink);
        }
        dgr_graph::Color::Unmarked => {}
    }
}

/// Adds `r` to `requested(v)`, cooperating with `M_T` (the new
/// `v → r` T-arc).
pub fn add_requester(
    state: &mut MarkState,
    g: &mut GraphStore,
    v: VertexId,
    r: Requester,
    sink: &mut dyn FnMut(MarkMsg),
) {
    if let Requester::Vertex(x) = r {
        coop_t_arc(state, g, v, x, sink);
    }
    g.vertex_mut(v).add_requester(r);
}

/// `expand-node(a, g)` (Figure 4-2): splices an instance of `tpl` (a
/// subgraph obtained from the free list) in below vertex `a`.
///
/// Per the paper: if `a` is marked the fresh vertices are marked too
/// (they are reachable exactly through `a`, which marking will not visit
/// again); otherwise they are unmarked. If `a` is transient, marks are
/// spawned on all of `a`'s new children and `mt-cnt(a)` adjusted. Both
/// marking processes are cooperated with.
///
/// Returns the freshly allocated vertices.
///
/// # Errors
///
/// Propagates template instantiation errors
/// ([`GraphError::OutOfVertices`], [`GraphError::BadTemplateParam`]); the
/// graph is unchanged on error.
pub fn expand_node(
    state: &mut MarkState,
    g: &mut GraphStore,
    a: VertexId,
    tpl: &Template,
    actuals: &[VertexId],
    sink: &mut dyn FnMut(MarkMsg),
) -> Result<Vec<VertexId>, GraphError> {
    // Record the colors *before* the splice mutates anything.
    let pre_r = g.mark(a, Slot::R).color;
    let pre_t = g.mark(a, Slot::T).color;

    let fresh = tpl.instantiate(g, a, actuals)?;

    if state.cooperation_enabled {
        use dgr_graph::Color::*;
        if let Some(mode) = state.r_mode {
            for &f in &fresh {
                let s = g.mark_mut(f, Slot::R);
                s.mt_cnt = 0;
                s.mt_par = None;
                if pre_r == Marked {
                    s.color = Marked;
                    // The arcs into the fresh body are unrequested at
                    // splice time, so the fresh vertices are reachable at
                    // `min(prior(a), request-type) = Reserve`. A later
                    // higher-priority path re-marks them (mark2's upgrade
                    // rule); assigning prior(a) here would over-promote
                    // lazy thunks into `R_v` and fabricate deadlocks.
                    s.prior = Priority::Reserve;
                } else {
                    s.color = Unmarked;
                }
            }
            if pre_r == Transient {
                let kids = g.vertex(a).r_children();
                let spawned = kids.len() as u32;
                for c in kids {
                    sink(r_mark(mode, c, MarkParent::Vertex(a)));
                }
                g.mark_mut(a, Slot::R).mt_cnt += spawned;
            }
        }
        if state.t_active {
            for &f in &fresh {
                let s = g.mark_mut(f, Slot::T);
                s.mt_cnt = 0;
                s.mt_par = None;
                s.color = if pre_t == Marked { Marked } else { Unmarked };
            }
            // Transient a: it still owes a mark to each (new) T-child.
            // Marked a: the fresh vertices were colored marked above, and
            // the actuals were already at least transient; nothing to do.
            if pre_t == Transient {
                let kids = g.vertex(a).t_children();
                let spawned = kids.len() as u32;
                for c in kids {
                    sink(MarkMsg::Mark3 {
                        v: c,
                        par: MarkParent::Vertex(a),
                    });
                }
                g.mark_mut(a, Slot::T).mt_cnt += spawned;
            }
        }
    }
    Ok(fresh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::{Color, NodeLabel, PrimOp, TemplateNode, TemplateRef};

    fn drain(state: &mut MarkState, g: &mut GraphStore, mut queue: Vec<MarkMsg>) {
        let mut events = 0;
        while let Some(m) = queue.pop() {
            let mut buf = Vec::new();
            handle_mark(state, g, m, &mut |m| buf.push(m));
            queue.extend(buf);
            events += 1;
            assert!(events < 100_000, "marking diverged");
        }
    }

    /// The classic lost-vertex scenario from Section 4.2: a → b → c; the
    /// mark from a to b is "in flight" (here: b not yet visited but a
    /// already marked would be the broken case — we construct the paper's
    /// exact interleaving with a transient).
    #[test]
    fn add_reference_transient_unmarked_spawns_mark() {
        let mut g = GraphStore::with_capacity(4);
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(a, b);
        g.connect(b, c);
        g.set_root(a);

        let mut state = MarkState::new();
        state.begin_r(RMode::Simple);
        // Marking has touched a (transient, owes one mark to b) but the
        // mark task on b has not executed yet.
        let mut pending = Vec::new();
        handle_mark(
            &mut state,
            &mut g,
            MarkMsg::Mark1 {
                v: a,
                par: MarkParent::RootPar,
            },
            &mut |m| pending.push(m),
        );
        assert!(g.mark(a, Slot::R).is_transient());

        // Mutator: connect a → c, then delete b → c.
        let mut extra = Vec::new();
        add_reference(&mut state, &mut g, a, b, c, &mut |m| extra.push(m)).unwrap();
        assert_eq!(extra.len(), 1, "cooperation spawned a mark for c");
        delete_reference(&mut g, b, c);

        pending.extend(extra);
        drain(&mut state, &mut g, pending);
        assert!(state.r_done);
        assert!(g.mark(c, Slot::R).is_marked(), "c was not lost");
    }

    #[test]
    fn add_reference_without_cooperation_loses_vertex() {
        // Identical scenario with cooperation disabled: c is never marked.
        let mut g = GraphStore::with_capacity(4);
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(a, b);
        g.connect(b, c);
        g.set_root(a);

        let mut state = MarkState::new();
        state.cooperation_enabled = false;
        state.begin_r(RMode::Simple);
        let mut pending = Vec::new();
        handle_mark(
            &mut state,
            &mut g,
            MarkMsg::Mark1 {
                v: a,
                par: MarkParent::RootPar,
            },
            &mut |m| pending.push(m),
        );
        // The mark for b is pending. Mutate: a → c added, b → c removed,
        // and crucially ALSO b → c's sibling path... Remove b → c before
        // the pending mark for b executes.
        add_reference(&mut state, &mut g, a, b, c, &mut |_| {
            panic!("no cooperation when disabled")
        })
        .unwrap();
        delete_reference(&mut g, b, c);
        drain(&mut state, &mut g, pending);
        assert!(state.r_done);
        assert!(
            g.mark(c, Slot::R).is_unmarked(),
            "static-graph assumption loses c"
        );
    }

    #[test]
    fn add_reference_marked_transient_executes_mark() {
        let mut g = GraphStore::with_capacity(4);
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(a, b);
        g.connect(b, c);

        let mut state = MarkState::new();
        state.begin_r(RMode::Simple);
        // Hand-construct: a marked, b transient (mid-marking), c unmarked.
        g.mark_mut(a, Slot::R).color = Color::Marked;
        g.mark_mut(b, Slot::R).color = Color::Transient;
        g.mark_mut(b, Slot::R).mt_par = Some(MarkParent::Vertex(a));
        g.mark_mut(b, Slot::R).mt_cnt = 1; // owes the mark on c

        let mut out = Vec::new();
        add_reference(&mut state, &mut g, a, b, c, &mut |m| out.push(m)).unwrap();
        // Executed synchronously: c at least transient already.
        assert!(
            !g.mark(c, Slot::R).is_unmarked(),
            "invariant 2 restored synchronously"
        );
        assert_eq!(g.mark(b, Slot::R).mt_cnt, 2);
        assert_eq!(
            g.vertex(a).r_children().iter().filter(|&&x| x == c).count(),
            1
        );
    }

    #[test]
    fn add_reference_rejects_non_adjacent() {
        let mut g = GraphStore::with_capacity(4);
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(1)).unwrap();
        // no arcs at all
        let mut state = MarkState::new();
        let err = add_reference(&mut state, &mut g, a, b, c, &mut |_| {}).unwrap_err();
        assert!(matches!(err, GraphError::NotAdjacent { .. }));
        assert!(g.vertex(a).args().is_empty());
    }

    #[test]
    fn dereference_removes_arc_and_requester() {
        let mut g = GraphStore::with_capacity(4);
        let x = g.alloc(NodeLabel::If).unwrap();
        let y = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(x, y);
        g.vertex_mut(y).add_requester(Requester::Vertex(x));
        assert!(dereference(&mut g, x, y));
        assert!(g.vertex(x).args().is_empty());
        assert!(g.vertex(y).requested().is_empty());
    }

    #[test]
    fn t_arc_cooperation_transient_source() {
        let mut g = GraphStore::with_capacity(4);
        let v = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let x = g.alloc(NodeLabel::If).unwrap();
        let mut state = MarkState::new();
        state.begin_t(1);
        g.mark_mut(v, Slot::T).color = Color::Transient;
        g.mark_mut(v, Slot::T).mt_par = Some(MarkParent::TaskRootPar);

        let mut out = Vec::new();
        add_requester(&mut state, &mut g, v, Requester::Vertex(x), &mut |m| {
            out.push(m)
        });
        assert_eq!(g.mark(v, Slot::T).mt_cnt, 1);
        assert_eq!(
            out,
            vec![MarkMsg::Mark3 {
                v: x,
                par: MarkParent::Vertex(v)
            }]
        );
        assert_eq!(g.vertex(v).requested(), &[Requester::Vertex(x)]);
    }

    #[test]
    fn t_arc_from_marked_source_spawns_nothing() {
        // M_T is a snapshot: arcs grown out of already-finished vertices
        // are not chased (the deadlock report's activity screen covers
        // them); crucially, t_done is never retracted, so the pass
        // terminates under a continuously mutating workload.
        let mut g = GraphStore::with_capacity(4);
        let v = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let x = g.alloc(NodeLabel::If).unwrap();
        let mut state = MarkState::new();
        state.begin_t(1);
        state.return_to_troot(); // the original pass finished...
        assert!(state.t_done);
        g.mark_mut(v, Slot::T).color = Color::Marked;

        add_requester(&mut state, &mut g, v, Requester::Vertex(x), &mut |_| {
            panic!("no marks for arcs out of finished vertices")
        });
        assert!(g.mark(x, Slot::T).is_unmarked());
        assert!(state.t_done, "termination is never re-armed");
        assert_eq!(g.vertex(v).requested(), &[Requester::Vertex(x)]);
    }

    #[test]
    fn external_requester_needs_no_cooperation() {
        let mut g = GraphStore::with_capacity(2);
        let v = g.alloc(NodeLabel::If).unwrap();
        let mut state = MarkState::new();
        state.begin_t(1);
        g.mark_mut(v, Slot::T).color = Color::Marked;
        add_requester(&mut state, &mut g, v, Requester::External, &mut |_| {
            panic!("no marks for external requesters")
        });
        assert_eq!(g.vertex(v).requested(), &[Requester::External]);
    }

    fn inc_template() -> Template {
        Template::new(
            "inc",
            1,
            vec![
                TemplateNode::new(
                    NodeLabel::Prim(PrimOp::Add),
                    vec![TemplateRef::Param(0), TemplateRef::Local(1)],
                ),
                TemplateNode::new(NodeLabel::lit_int(1), vec![]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn expand_node_marked_parent_marks_fresh() {
        let mut g = GraphStore::with_capacity(8);
        let arg = g.alloc(NodeLabel::lit_int(41)).unwrap();
        let app = g.alloc(NodeLabel::Apply).unwrap();
        g.connect(app, arg);
        let mut state = MarkState::new();
        state.begin_r(RMode::Priority);
        g.mark_mut(app, Slot::R).color = Color::Marked;
        g.mark_mut(app, Slot::R).prior = Priority::Vital;
        g.mark_mut(arg, Slot::R).color = Color::Marked;
        g.mark_mut(arg, Slot::R).prior = Priority::Vital;

        let fresh = expand_node(
            &mut state,
            &mut g,
            app,
            &inc_template(),
            &[arg],
            &mut |_| panic!("no marks when parent marked"),
        )
        .unwrap();
        for f in fresh {
            assert!(g.mark(f, Slot::R).is_marked());
            // Reachable only through fresh unrequested arcs: Reserve.
            assert_eq!(g.mark(f, Slot::R).prior, Priority::Reserve);
        }
    }

    #[test]
    fn expand_node_transient_parent_spawns_marks() {
        let mut g = GraphStore::with_capacity(8);
        let arg = g.alloc(NodeLabel::lit_int(41)).unwrap();
        let app = g.alloc(NodeLabel::Apply).unwrap();
        g.connect(app, arg);
        let mut state = MarkState::new();
        state.begin_r(RMode::Simple);
        g.mark_mut(app, Slot::R).color = Color::Transient;
        g.mark_mut(app, Slot::R).mt_par = Some(MarkParent::RootPar);
        g.mark_mut(app, Slot::R).mt_cnt = 1; // owes a mark to arg (in flight)

        let mut out = Vec::new();
        let fresh = expand_node(&mut state, &mut g, app, &inc_template(), &[arg], &mut |m| {
            out.push(m)
        })
        .unwrap();
        for &f in &fresh {
            assert!(g.mark(f, Slot::R).is_unmarked());
        }
        // Marks spawned on the NEW children of app (= [arg, fresh[0]]).
        assert_eq!(out.len(), 2);
        assert_eq!(g.mark(app, Slot::R).mt_cnt, 3);
    }

    #[test]
    fn expand_node_unmarked_parent_no_marks() {
        let mut g = GraphStore::with_capacity(8);
        let arg = g.alloc(NodeLabel::lit_int(41)).unwrap();
        let app = g.alloc(NodeLabel::Apply).unwrap();
        g.connect(app, arg);
        let mut state = MarkState::new();
        state.begin_r(RMode::Simple);
        let fresh = expand_node(
            &mut state,
            &mut g,
            app,
            &inc_template(),
            &[arg],
            &mut |_| panic!("no marks for unmarked parent"),
        )
        .unwrap();
        for f in fresh {
            assert!(g.mark(f, Slot::R).is_unmarked());
        }
    }
}
