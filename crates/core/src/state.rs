//! Shared marking-process state: activity, `done` flags, and the virtual
//! task root.

use serde::{Deserialize, Serialize};

/// Which mark-task flavor the R-side marking process is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RMode {
    /// `mark1` — the simplified algorithm of Figure 4-1.
    Simple,
    /// `mark2` — priority marking, Figures 5-1/5-2.
    Priority,
}

/// The (tiny, per-system) state of the two marking processes.
///
/// The paper's algorithm is decentralized: all real state lives on the
/// vertices (`mt-cnt`, `mt-par`, colors). What remains here is exactly what
/// the paper also keeps outside the graph: the `done` flags that
/// `return1(rootpar)` sets, the outstanding-seed count of the virtual
/// `troot`, and whether each process is currently active (which the
/// cooperating mutator primitives consult).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MarkState {
    /// `Some(mode)` while the R-side process (`mark1` or `M_R`) is active.
    pub r_mode: Option<RMode>,
    /// `true` once `return1(rootpar)` has executed *and* every orphan mark
    /// hung on the R-side virtual root by a cooperating mutator has
    /// returned.
    pub r_done: bool,
    /// Whether `return1(rootpar)` has executed.
    r_root_returned: bool,
    /// Mutator-spawned R-side marks hung on the virtual root (used when a
    /// *marked* vertex gains a new arc and no transient vertex is available
    /// to absorb the return).
    r_extra_outstanding: u32,
    /// `true` while `M_T` is active.
    pub t_active: bool,
    /// Set when every seed hung on the virtual `troot` has returned.
    pub t_done: bool,
    /// Mark tasks hung on the virtual `troot` that have not yet returned
    /// (the `mt-cnt` of `troot`).
    pub troot_outstanding: u32,
    /// `false` disables mutator cooperation entirely — the ablation that
    /// reproduces the static-graph assumption of Chandy–Misra-style
    /// algorithms (experiment T-abl).
    pub cooperation_enabled: bool,
}

impl MarkState {
    /// Fresh state with cooperation enabled and no process active.
    pub fn new() -> Self {
        MarkState {
            cooperation_enabled: true,
            ..MarkState::default()
        }
    }

    /// Begins an R-side pass: activates the process and clears `done`.
    pub fn begin_r(&mut self, mode: RMode) {
        self.r_mode = Some(mode);
        self.r_done = false;
        self.r_root_returned = false;
        self.r_extra_outstanding = 0;
    }

    /// Ends the R-side pass (after `done` was observed).
    pub fn end_r(&mut self) {
        self.r_mode = None;
    }

    /// Notes that `return1(rootpar)` executed.
    pub fn note_rootpar_return(&mut self) {
        self.r_root_returned = true;
        self.r_done = self.r_extra_outstanding == 0;
    }

    /// Registers an orphan R-side mark hung on the virtual root.
    pub fn add_r_extra(&mut self) {
        self.r_extra_outstanding += 1;
        self.r_done = false;
    }

    /// Handles the return of an orphan R-side mark.
    pub fn return_r_extra(&mut self) {
        debug_assert!(
            self.r_extra_outstanding > 0,
            "return without outstanding mark"
        );
        self.r_extra_outstanding -= 1;
        if self.r_extra_outstanding == 0 && self.r_root_returned {
            self.r_done = true;
        }
    }

    /// Outstanding orphan R-side marks (diagnostics / invariant checking).
    pub fn r_extra_outstanding(&self) -> u32 {
        self.r_extra_outstanding
    }

    /// Begins a `M_T` pass with the given number of seed marks.
    ///
    /// If there are no seeds the pass is vacuously done (an idle system has
    /// an empty `T`).
    pub fn begin_t(&mut self, seeds: u32) {
        self.t_active = true;
        self.troot_outstanding = seeds;
        self.t_done = seeds == 0;
    }

    /// Ends the `M_T` pass.
    pub fn end_t(&mut self) {
        self.t_active = false;
    }

    /// Registers one more seed hung on the virtual `troot` (used by the
    /// cooperating mutators when a marked-T vertex gains a new T-arc).
    pub fn add_troot_seed(&mut self) {
        self.troot_outstanding += 1;
        self.t_done = false;
    }

    /// Handles a return to the virtual `troot`; sets `t_done` when the last
    /// outstanding seed returns.
    pub fn return_to_troot(&mut self) {
        debug_assert!(
            self.troot_outstanding > 0,
            "return without outstanding seed"
        );
        self.troot_outstanding -= 1;
        if self.troot_outstanding == 0 {
            self.t_done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_r() {
        let mut s = MarkState::new();
        assert!(s.cooperation_enabled);
        s.begin_r(RMode::Priority);
        assert_eq!(s.r_mode, Some(RMode::Priority));
        assert!(!s.r_done);
        s.r_done = true;
        s.end_r();
        assert!(s.r_mode.is_none());
    }

    #[test]
    fn lifecycle_t_counts_seeds() {
        let mut s = MarkState::new();
        s.begin_t(2);
        assert!(s.t_active && !s.t_done);
        s.return_to_troot();
        assert!(!s.t_done);
        s.add_troot_seed();
        s.return_to_troot();
        s.return_to_troot();
        assert!(s.t_done);
        s.end_t();
        assert!(!s.t_active);
    }

    #[test]
    fn empty_t_pass_is_immediately_done() {
        let mut s = MarkState::new();
        s.begin_t(0);
        assert!(s.t_done);
    }
}
