//! The Section 6 space optimization: marking with **two words per PE**.
//!
//! The paper remarks that the per-vertex `mt-cnt` / `mt-par` fields "incur
//! a high space overhead" and that "it is possible to combine all of the
//! mt-cnt's and mt-par's into just two words on each PE" [6]. This module
//! implements that design: the marking tree is built over *processing
//! elements* rather than vertices, with Dijkstra–Scholten-style engagement:
//!
//! * each PE keeps a **deficit** counter (outstanding remote marks plus
//!   its local work) and a **parent PE** — two words;
//! * vertices carry only the mark *bit* (no transient state, no counter,
//!   no parent);
//! * marks local to a PE are chased through the PE's own work list at no
//!   protocol cost; a mark crossing to PE `k` increments the sender's
//!   deficit and is eventually acknowledged by `k`;
//! * a PE first engaged by PE `j` records `j` as its tree parent and
//!   withholds that acknowledgement until its own deficit is zero and its
//!   work list empty; later engagements are acknowledged immediately;
//! * marking terminates when the initiating environment receives the
//!   root PE's acknowledgement.
//!
//! The trade: per-vertex space drops from two full slots to one bit, at
//! the cost of acknowledgement messages (one per cross-PE mark) and of
//! losing the vertex-granular `transient` state the cooperating mutator
//! primitives key on — so this variant is for marking **quiescent**
//! partitions (the paper likewise presents the compression as an
//! implementation technique, with the concurrent protocol unchanged).

use std::collections::VecDeque;

use dgr_graph::{Color, GraphStore, PartitionMap, PartitionStrategy, Slot, VertexId};
use serde::{Deserialize, Serialize};

/// Per-PE marking state: exactly the two words the paper promises.
#[derive(Debug, Clone, Copy, Default)]
struct PeState {
    /// Outstanding cross-PE marks sent plus (while engaged) the pending
    /// engagement acknowledgement.
    deficit: u64,
    /// The PE that first engaged this one (`u16::MAX` = engaged by the
    /// external initiator; `None` = disengaged).
    parent: Option<u16>,
}

/// Cost accounting for a compressed pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedStats {
    /// Vertices marked.
    pub marked: usize,
    /// Marks that crossed a partition boundary.
    pub remote_marks: u64,
    /// Acknowledgement messages sent.
    pub acks: u64,
    /// Local (intra-PE) mark steps.
    pub local_steps: u64,
}

const EXTERNAL: u16 = u16::MAX;

enum Msg {
    Mark { v: VertexId, from: u16 },
    Ack { to: u16 },
}

/// Runs a complete compressed `mark1` pass over a quiescent graph,
/// marking the R slot's color bit of every root-reachable vertex.
///
/// # Panics
///
/// Panics if the graph has no root.
pub fn run_mark1_compressed(
    g: &mut GraphStore,
    num_pes: u16,
    strategy: PartitionStrategy,
) -> CompressedStats {
    let root = g.root().expect("marking needs a root");
    crate::driver::reset_slot(g, Slot::R);
    let partition = PartitionMap::new(num_pes, g.capacity(), strategy);
    let mut pes: Vec<PeState> = vec![PeState::default(); num_pes as usize];
    // Per-PE local work lists (vertices to mark on that PE).
    let mut local: Vec<Vec<VertexId>> = vec![Vec::new(); num_pes as usize];
    let mut net: VecDeque<Msg> = VecDeque::new();
    let mut stats = CompressedStats::default();
    let mut done = false;

    net.push_back(Msg::Mark {
        v: root,
        from: EXTERNAL,
    });

    // One scheduler turn: deliver a network message or advance one PE's
    // local work list; a PE with an empty list and zero deficit
    // acknowledges its engagement.
    loop {
        if let Some(msg) = net.pop_front() {
            match msg {
                Msg::Mark { v, from } => {
                    let me = partition.pe_of(v).raw();
                    if pes[me as usize].parent.is_none() && !done {
                        // First engagement: adopt the sender as parent;
                        // the engagement ack is withheld (counted in the
                        // deficit) until this PE quiesces.
                        pes[me as usize].parent = Some(from);
                        pes[me as usize].deficit += 1;
                    } else {
                        // Already engaged (or finished): acknowledge the
                        // extra engagement immediately.
                        if from != EXTERNAL {
                            net.push_back(Msg::Ack { to: from });
                            stats.acks += 1;
                        }
                    }
                    local[me as usize].push(v);
                }
                Msg::Ack { to } => {
                    if to == EXTERNAL {
                        done = true;
                    } else {
                        let pe = &mut pes[to as usize];
                        debug_assert!(pe.deficit > 0);
                        pe.deficit -= 1;
                    }
                }
            }
            continue;
        }
        // No network traffic: advance local work, round-robin.
        let mut progressed = false;
        for me in 0..num_pes {
            if let Some(v) = local[me as usize].pop() {
                progressed = true;
                stats.local_steps += 1;
                if g.is_free(v) || !g.mark(v, Slot::R).is_unmarked() {
                    continue;
                }
                g.mark_mut(v, Slot::R).color = Color::Marked;
                stats.marked += 1;
                for c in g.vertex(v).r_children() {
                    let dst = partition.pe_of(c).raw();
                    if dst == me {
                        local[me as usize].push(c);
                    } else {
                        stats.remote_marks += 1;
                        pes[me as usize].deficit += 1;
                        net.push_back(Msg::Mark { v: c, from: me });
                    }
                }
            }
        }
        if progressed {
            continue;
        }
        // Everything idle: disengage PEs whose deficit is only their own
        // withheld engagement ack.
        let mut any_disengaged = false;
        for me in 0..num_pes as usize {
            if pes[me].parent.is_some() && pes[me].deficit == 1 && local[me].is_empty() {
                let parent = pes[me].parent.take().unwrap();
                pes[me].deficit = 0;
                stats.acks += 1;
                net.push_back(Msg::Ack { to: parent });
                any_disengaged = true;
            }
        }
        if !any_disengaged {
            break;
        }
    }
    assert!(done, "compressed marking drained without termination");
    stats
}

/// Per-vertex marking bytes of the compressed scheme (one bit, rounded to
/// a byte here) versus the full scheme's two slots.
pub fn compressed_footprint_per_vertex() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::{oracle, NodeLabel};

    fn assert_matches_oracle(g: &GraphStore) {
        let want = oracle::reachable_r(g);
        for v in g.live_ids() {
            assert_eq!(
                want.contains(v),
                g.mark(v, Slot::R).is_marked(),
                "vertex {v}"
            );
        }
    }

    #[test]
    fn compressed_marks_exactly_r_on_random_graphs() {
        for seed in 0..10 {
            for pes in [1u16, 3, 8] {
                let mut g = dgr_workloads_free::random_digraph(300, 2.5, seed);
                let stats = run_mark1_compressed(&mut g, pes, PartitionStrategy::Modulo);
                assert_matches_oracle(&g);
                assert!(stats.marked > 0);
                if pes == 1 {
                    assert_eq!(stats.remote_marks, 0);
                }
            }
        }
    }

    #[test]
    fn compressed_handles_cycles() {
        let mut g = GraphStore::with_capacity(4);
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::If).unwrap();
        g.connect(a, b);
        g.connect(b, a);
        g.connect(a, a);
        g.set_root(a);
        let stats = run_mark1_compressed(&mut g, 2, PartitionStrategy::Modulo);
        assert_eq!(stats.marked, 2);
        assert_matches_oracle(&g);
    }

    #[test]
    fn ack_traffic_tracks_remote_marks() {
        let mut g = dgr_workloads_free::random_digraph(500, 3.0, 1);
        let stats = run_mark1_compressed(&mut g, 8, PartitionStrategy::Modulo);
        // Every remote mark is eventually acknowledged (immediately or as
        // a withheld engagement ack) and the external engagement adds one.
        assert_eq!(stats.acks, stats.remote_marks + 1);
    }

    /// Minimal local copy of the random-graph generator (dgr-workloads
    /// depends on this crate, so the real one is unavailable here).
    mod dgr_workloads_free {
        use super::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        pub fn random_digraph(n: usize, avg_degree: f64, seed: u64) -> GraphStore {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = GraphStore::with_capacity(n);
            let ids: Vec<VertexId> = (0..n)
                .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
                .collect();
            for &v in &ids {
                let d = rng.gen_range(0..=(2.0 * avg_degree) as usize);
                for _ in 0..d {
                    let t = ids[rng.gen_range(0..n)];
                    g.connect(v, t);
                }
            }
            g.set_root(ids[0]);
            g
        }
    }
}
