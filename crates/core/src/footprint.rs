//! Space-overhead accounting (the Section 6 remark).
//!
//! The paper notes that the algorithm "as presented incurs a high space
//! overhead, in that each vertex requires space for mt-cnt, mt-par, and
//! marking bits", and points to a compression (all `mt-cnt`s and `mt-par`s
//! folded into two words per PE) described in the companion report [6].
//! This module measures the uncompressed overhead this implementation
//! actually pays — experiment T4 reports it — and documents the compressed
//! bound for comparison.

use dgr_graph::{MarkSlot, Vertex};
use serde::{Deserialize, Serialize};

/// Byte-level footprint of the marking machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Footprint {
    /// Size of one marking slot (`color` + `mt-cnt` + `mt-par` + `prior`).
    pub slot_bytes: usize,
    /// Marking overhead per vertex: two slots (one for `M_R`, one `M_T`).
    pub per_vertex_marking_bytes: usize,
    /// Total size of a vertex record, marking slots included.
    pub vertex_bytes: usize,
    /// Fraction of the vertex record spent on marking state (0..=1).
    pub marking_fraction: f64,
    /// The paper's compressed design: two machine words per PE,
    /// independent of vertex count.
    pub compressed_per_pe_bytes: usize,
}

/// Measures the current layout.
pub fn measure() -> Footprint {
    let slot_bytes = std::mem::size_of::<MarkSlot>();
    let per_vertex_marking_bytes = 2 * slot_bytes;
    let vertex_bytes = std::mem::size_of::<Vertex>();
    Footprint {
        slot_bytes,
        per_vertex_marking_bytes,
        vertex_bytes,
        marking_fraction: per_vertex_marking_bytes as f64 / vertex_bytes as f64,
        compressed_per_pe_bytes: 2 * std::mem::size_of::<usize>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_is_sane() {
        let f = measure();
        assert!(f.slot_bytes > 0);
        assert_eq!(f.per_vertex_marking_bytes, 2 * f.slot_bytes);
        assert!(f.vertex_bytes > f.per_vertex_marking_bytes);
        assert!(f.marking_fraction > 0.0 && f.marking_fraction < 1.0);
        assert_eq!(f.compressed_per_pe_bytes, 2 * std::mem::size_of::<usize>());
    }

    #[test]
    fn slot_stays_small() {
        // The slot is a color, a counter, an optional parent and a
        // priority; it should stay within a few machine words.
        let f = measure();
        assert!(
            f.slot_bytes <= 4 * std::mem::size_of::<usize>(),
            "marking slot grew to {} bytes",
            f.slot_bytes
        );
    }
}
