//! Drivers that run complete marking passes on the deterministic simulator.
//!
//! A pass spawns the initial mark task(s), then delivers marking messages
//! until the system is quiescent; the algorithm's own termination detection
//! (the `done` flag set by `return1(rootpar)`, or the virtual `troot` count
//! for `M_T`) is asserted to agree. These drivers run marking **alone** —
//! the combined marking + reduction + restructuring cycle lives in
//! `dgr-gc`, which interleaves mutator work between marking events.

use dgr_graph::{
    GraphStore, MarkParent, PartitionMap, PartitionStrategy, Priority, Slot, TaskEndpoints,
};
use dgr_sim::{DetSim, Envelope, Lane, SchedPolicy};
use dgr_telemetry::{CounterId, Phase, Registry};
use serde::{Deserialize, Serialize};

use crate::handler::handle_mark;
use crate::invariants::check_invariants;
use crate::msg::MarkMsg;
use crate::state::{MarkState, RMode};

/// Configuration for a marking pass.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkRunConfig {
    /// Number of processing elements.
    pub num_pes: u16,
    /// Scheduling policy for message delivery.
    pub policy: SchedPolicy,
    /// Seed for randomized policies.
    pub seed: u64,
    /// How vertices map to PEs.
    pub partition: PartitionStrategy,
    /// Check the marking invariants after every event (slow; tests only).
    pub check_invariants: bool,
}

impl Default for MarkRunConfig {
    fn default() -> Self {
        MarkRunConfig {
            num_pes: 4,
            policy: SchedPolicy::Fifo,
            seed: 0,
            partition: PartitionStrategy::Modulo,
            check_invariants: false,
        }
    }
}

/// Statistics of a completed marking pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MarkStats {
    /// Marking messages delivered (mark + return events).
    pub events: u64,
    /// Vertices marked in the pass's slot.
    pub marked: usize,
    /// Messages that crossed a partition boundary.
    pub remote_messages: u64,
}

/// Resets one marking slot on every vertex (free-list vertices included) —
/// the preparation step at the start of each marking cycle. O(1): bumps
/// the store's epoch for the slot, and stale per-vertex state is reset
/// lazily on first access (see [`GraphStore::begin_mark_cycle`]).
pub fn reset_slot(g: &mut GraphStore, slot: Slot) {
    g.begin_mark_cycle(slot);
}

/// Routes a marking message to the PE owning its destination vertex;
/// returns addressed to the dummy roots execute on PE 0, where the marking
/// process was initiated.
pub fn route(partition: &PartitionMap, msg: MarkMsg) -> Envelope<MarkMsg> {
    let pe = msg
        .dest_vertex()
        .map(|v| partition.pe_of(v))
        .unwrap_or(dgr_graph::PeId::new(0));
    Envelope::new(pe, Lane::Marking, msg)
}

/// Phase tag and flow-event name for a marking message, by slot: the
/// `M_T` wave and the `M_R` wave get distinct names so the analyzer can
/// histogram their fan-outs separately (Theorem 2 orders them).
fn flow_meta(m: &MarkMsg) -> (Phase, &'static str) {
    match m.slot() {
        Slot::T => (Phase::Mt, "M_T"),
        Slot::R => (Phase::Mr, "M_R"),
    }
}

/// Dumps the flight recorder (event-ring tail, metrics snapshot, every
/// undelivered message) next to the process, then panics with `reason`.
/// The dump works with telemetry off too — the in-flight set comes from
/// the simulator, the rings are just empty.
fn flight_dump_and_panic(reason: String, pe: u16, telem: &Registry, sim: &DetSim<MarkMsg>) -> ! {
    let in_flight: Vec<String> = sim
        .iter_pending()
        .map(|(p, l, m)| format!("pe={} lane={l:?} {m:?}", p.raw()))
        .collect();
    let dropped = telem.dropped_events();
    let events = telem.drain_events();
    match dgr_telemetry::write_flight(&reason, pe, &events, dropped, &telem.snapshot(), &in_flight)
    {
        Ok(path) => eprintln!("flight recorder: wrote {}", path.display()),
        Err(e) => eprintln!("flight recorder: dump failed: {e}"),
    }
    panic!("{reason}");
}

fn run_pass(
    g: &mut GraphStore,
    cfg: &MarkRunConfig,
    state: &mut MarkState,
    slot: Slot,
    initial: Vec<MarkMsg>,
    phase: Phase,
    telem: &Registry,
) -> MarkStats {
    let partition = PartitionMap::new(cfg.num_pes, g.capacity(), cfg.partition);
    let mut sim: DetSim<MarkMsg> = DetSim::new(cfg.num_pes, cfg.policy, cfg.seed);
    for m in initial {
        // Seeds originate on PE 0, where the marking process starts.
        let (fphase, fname) = flow_meta(&m);
        let seq = sim.send(route(&partition, m));
        telem.flow_send(0, 0, fphase, fname, seq + 1);
    }
    let mut stats = MarkStats::default();
    let mut buf: Vec<MarkMsg> = Vec::new();
    let _pass = telem.span(0, 0, phase, phase.name());
    while let Some((pe, _lane, seq, msg)) = sim.next_event_tagged() {
        if msg.dest_vertex().map(|v| partition.pe_of(v)) != Some(pe) && msg.dest_vertex().is_some()
        {
            stats.remote_messages += 1;
        }
        let (fphase, fname) = flow_meta(&msg);
        telem.flow_recv(pe.raw(), 0, fphase, fname, seq + 1);
        telem.pe(pe.raw()).inc(CounterId::MarkEvents);
        handle_mark(state, g, msg, &mut |m| buf.push(m));
        stats.events += 1;
        for m in buf.drain(..) {
            let (fphase, fname) = flow_meta(&m);
            let env = route(&partition, m);
            if env.dst != pe {
                stats.remote_messages += 1;
                telem.pe(pe.raw()).inc(CounterId::SendsRemote);
            } else {
                telem.pe(pe.raw()).inc(CounterId::SendsLocal);
            }
            let seq = sim.send(env);
            telem.flow_send(pe.raw(), 0, fphase, fname, seq + 1);
        }
        if cfg.check_invariants {
            let pending: Vec<MarkMsg> = sim.iter_pending().map(|(_, _, m)| *m).collect();
            if let Err(e) = check_invariants(g, slot, &pending, state) {
                flight_dump_and_panic(
                    format!(
                        "invariant violation on PE {} after event {} (handling {msg:?}): {e}",
                        pe.raw(),
                        stats.events
                    ),
                    pe.raw(),
                    telem,
                    &sim,
                );
            }
        }
    }
    stats.marked = g
        .live_ids()
        .filter(|&v| g.mark(v, slot).is_marked())
        .count();
    stats
}

/// Runs the simplified algorithm (`mark1`, Figure 4-1) from the root to
/// completion. Resets the R slot first.
///
/// # Panics
///
/// Panics if the graph has no root, or if the pass drains without the
/// `done` flag being set (which would indicate a broken invariant).
pub fn run_mark1(g: &mut GraphStore, cfg: &MarkRunConfig) -> MarkStats {
    run_mark1_with(g, cfg, &Registry::new(cfg.num_pes))
}

/// [`run_mark1`] with an explicit telemetry registry: the pass is wrapped
/// in an `M_R` span and per-PE mark-event and local/remote send counters
/// are recorded.
///
/// # Panics
///
/// Panics under the same conditions as [`run_mark1`].
pub fn run_mark1_with(g: &mut GraphStore, cfg: &MarkRunConfig, telem: &Registry) -> MarkStats {
    let root = g.root().expect("marking needs a root");
    reset_slot(g, Slot::R);
    let mut state = MarkState::new();
    state.begin_r(RMode::Simple);
    let stats = run_pass(
        g,
        cfg,
        &mut state,
        Slot::R,
        vec![MarkMsg::Mark1 {
            v: root,
            par: MarkParent::RootPar,
        }],
        Phase::Mr,
        telem,
    );
    assert!(state.r_done, "mark1 drained without termination signal");
    stats
}

/// Runs the priority-marking process `M_R` (Figure 5-2): spawns
/// `mark2(root, rootpar, 3)` and waits for `done`. Resets the R slot first.
///
/// # Panics
///
/// Panics if the graph has no root or termination is not signalled.
pub fn run_mark2(g: &mut GraphStore, cfg: &MarkRunConfig) -> MarkStats {
    run_mark2_with(g, cfg, &Registry::new(cfg.num_pes))
}

/// [`run_mark2`] with an explicit telemetry registry (see
/// [`run_mark1_with`] for what is recorded).
///
/// # Panics
///
/// Panics under the same conditions as [`run_mark2`].
pub fn run_mark2_with(g: &mut GraphStore, cfg: &MarkRunConfig, telem: &Registry) -> MarkStats {
    let root = g.root().expect("marking needs a root");
    reset_slot(g, Slot::R);
    let mut state = MarkState::new();
    state.begin_r(RMode::Priority);
    let stats = run_pass(
        g,
        cfg,
        &mut state,
        Slot::R,
        vec![MarkMsg::Mark2 {
            v: root,
            par: MarkParent::RootPar,
            prior: Priority::Vital,
        }],
        Phase::Mr,
        telem,
    );
    assert!(state.r_done, "M_R drained without termination signal");
    stats
}

/// Runs the task-marking process `M_T` (Figure 5-3): hangs one `mark3`
/// seed per task endpoint on the virtual `troot` and waits for all of them
/// to return. Resets the T slot first.
///
/// # Panics
///
/// Panics if termination is not signalled.
pub fn run_mark3(g: &mut GraphStore, tasks: &TaskEndpoints, cfg: &MarkRunConfig) -> MarkStats {
    run_mark3_with(g, tasks, cfg, &Registry::new(cfg.num_pes))
}

/// [`run_mark3`] with an explicit telemetry registry: the pass is wrapped
/// in an `M_T` span with the same per-PE counters as [`run_mark1_with`].
///
/// # Panics
///
/// Panics under the same conditions as [`run_mark3`].
pub fn run_mark3_with(
    g: &mut GraphStore,
    tasks: &TaskEndpoints,
    cfg: &MarkRunConfig,
    telem: &Registry,
) -> MarkStats {
    reset_slot(g, Slot::T);
    let mut state = MarkState::new();
    state.begin_t(tasks.seeds().len() as u32);
    let initial = tasks
        .seeds()
        .iter()
        .map(|&v| MarkMsg::Mark3 {
            v,
            par: MarkParent::TaskRootPar,
        })
        .collect();
    let stats = run_pass(g, cfg, &mut state, Slot::T, initial, Phase::Mt, telem);
    assert!(state.t_done, "M_T drained without termination signal");
    stats
}

/// Statistics of a round-synchronous (BSP) marking pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BspStats {
    /// Synchronous rounds executed — the pass's *parallel time* when every
    /// PE executes one task per round.
    pub rounds: u64,
    /// Total marking tasks executed — the pass's *work*.
    pub events: u64,
}

/// Runs `mark1` in round-synchronous (BSP) fashion: in each round every PE
/// executes at most one pending marking task; tasks spawned in a round are
/// delivered for the next. The returned [`BspStats::rounds`] is the pass's
/// ideal parallel time with `num_pes` processors — the hardware-independent
/// scalability measure of experiment T5 (wall-clock speedup requires more
/// hardware threads than a CI container has).
///
/// # Panics
///
/// Panics if the graph has no root or termination is not signalled.
pub fn run_mark1_bsp(g: &mut GraphStore, num_pes: u16, strategy: PartitionStrategy) -> BspStats {
    run_mark1_bsp_with(g, num_pes, strategy, &Registry::new(num_pes))
}

/// [`run_mark1_bsp`] with an explicit telemetry registry: the pass is
/// wrapped in an `M_R` span, each PE's executed tasks land in its
/// mark-event counter, and every round emits an instant event carrying
/// the number of tasks it executed.
///
/// # Panics
///
/// Panics under the same conditions as [`run_mark1_bsp`].
pub fn run_mark1_bsp_with(
    g: &mut GraphStore,
    num_pes: u16,
    strategy: PartitionStrategy,
    telem: &Registry,
) -> BspStats {
    use std::collections::VecDeque;
    let root = g.root().expect("marking needs a root");
    reset_slot(g, Slot::R);
    let partition = PartitionMap::new(num_pes, g.capacity(), strategy);
    let mut state = MarkState::new();
    state.begin_r(RMode::Simple);

    let pe_of = |m: &MarkMsg| {
        m.dest_vertex()
            .map(|v| partition.pe_of(v).index())
            .unwrap_or(0)
    };
    let mut queues: Vec<VecDeque<MarkMsg>> = vec![VecDeque::new(); num_pes as usize];
    let first = MarkMsg::Mark1 {
        v: root,
        par: MarkParent::RootPar,
    };
    queues[pe_of(&first)].push_back(first);

    let mut stats = BspStats::default();
    let mut buf: Vec<MarkMsg> = Vec::new();
    let _pass = telem.span(0, 0, Phase::Mr, "bsp");
    while queues.iter().any(|q| !q.is_empty()) {
        stats.rounds += 1;
        let round_start = stats.events;
        let mut staged: Vec<MarkMsg> = Vec::new();
        for (pe, q) in queues.iter_mut().enumerate() {
            if let Some(m) = q.pop_front() {
                telem.pe(pe as u16).inc(CounterId::MarkEvents);
                handle_mark(&mut state, g, m, &mut |m| buf.push(m));
                stats.events += 1;
                staged.append(&mut buf);
            }
        }
        telem.instant(0, 0, Phase::Mr, "bsp_round", stats.events - round_start);
        for m in staged {
            let pe = pe_of(&m);
            queues[pe].push_back(m);
        }
    }
    assert!(state.r_done, "BSP marking drained without termination");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::{oracle, NodeLabel, RequestKind, VertexId};

    #[test]
    fn bsp_marks_like_fifo_and_parallelizes() {
        // A wide tree: rounds shrink as PEs grow; the mark set is exact.
        let n: u32 = 255;
        let mut g = GraphStore::with_capacity(n as usize);
        let ids: Vec<_> = (0..n)
            .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
            .collect();
        for i in 0..n as usize {
            for c in [2 * i + 1, 2 * i + 2] {
                if c < n as usize {
                    g.connect(ids[i], ids[c]);
                }
            }
        }
        g.set_root(ids[0]);

        let mut rounds = Vec::new();
        for pes in [1u16, 4, 16] {
            let mut g2 = g.clone();
            let stats = run_mark1_bsp(&mut g2, pes, PartitionStrategy::Modulo);
            assert_eq!(stats.events, 2 * n as u64, "one mark + one return each");
            for v in g2.live_ids() {
                assert!(g2.mark(v, Slot::R).is_marked());
            }
            rounds.push(stats.rounds);
        }
        assert!(
            rounds[0] > rounds[1] && rounds[1] > rounds[2],
            "parallel time falls with PEs: {rounds:?}"
        );
    }

    fn diamond() -> (GraphStore, [VertexId; 5]) {
        let mut g = GraphStore::with_capacity(16);
        let root = g.alloc(NodeLabel::If).unwrap();
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(0)).unwrap();
        let stray = g.alloc(NodeLabel::lit_int(9)).unwrap();
        g.connect(root, a);
        g.connect(root, b);
        g.connect(a, c);
        g.connect(b, c);
        g.set_root(root);
        (g, [root, a, b, c, stray])
    }

    #[test]
    fn mark1_agrees_with_oracle_on_all_policies() {
        for policy in [
            SchedPolicy::Fifo,
            SchedPolicy::Lifo,
            SchedPolicy::RoundRobin,
            SchedPolicy::PriorityFirst,
            SchedPolicy::Random { marking_bias: 0.5 },
        ] {
            let (mut g, [root, a, b, c, stray]) = diamond();
            let cfg = MarkRunConfig {
                policy,
                check_invariants: true,
                ..Default::default()
            };
            let stats = run_mark1(&mut g, &cfg);
            let r = oracle::reachable_r(&g);
            for v in [root, a, b, c] {
                assert!(r.contains(v) && g.mark(v, Slot::R).is_marked());
            }
            assert!(!r.contains(stray) && g.mark(stray, Slot::R).is_unmarked());
            assert_eq!(stats.marked, 4);
        }
    }

    #[test]
    fn mark2_priorities_agree_with_oracle() {
        let mut g = GraphStore::with_capacity(16);
        let root = g.alloc(NodeLabel::If).unwrap();
        let p = g.alloc(NodeLabel::Prim(dgr_graph::PrimOp::Lt)).unwrap();
        let t = g.alloc(NodeLabel::If).unwrap();
        let e = g.alloc(NodeLabel::lit_int(3)).unwrap();
        let shared = g.alloc(NodeLabel::lit_int(4)).unwrap();
        g.connect(root, p);
        g.vertex_mut(root)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(root, t);
        g.vertex_mut(root)
            .set_request_kind(1, Some(RequestKind::Eager));
        g.connect(root, e);
        g.connect(t, shared);
        g.vertex_mut(t)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.connect(p, shared);
        g.vertex_mut(p)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.set_root(root);

        let cfg = MarkRunConfig {
            check_invariants: true,
            ..Default::default()
        };
        run_mark2(&mut g, &cfg);
        let want = oracle::priorities(&g);
        for v in g.live_ids() {
            let got = g
                .mark(v, Slot::R)
                .is_marked()
                .then(|| g.mark(v, Slot::R).prior);
            assert_eq!(got, want[v.index()], "priority mismatch at {v}");
        }
        crate::invariants::check_priority_closure(&g).unwrap();
    }

    #[test]
    fn mark2_random_schedules_agree_with_oracle() {
        for seed in 0..20 {
            let (mut g, _) = diamond();
            // Sprinkle request kinds.
            let root = g.root().unwrap();
            g.vertex_mut(root)
                .set_request_kind(0, Some(RequestKind::Eager));
            let cfg = MarkRunConfig {
                policy: SchedPolicy::Random { marking_bias: 0.5 },
                seed,
                check_invariants: true,
                ..Default::default()
            };
            run_mark2(&mut g, &cfg);
            let want = oracle::priorities(&g);
            for v in g.live_ids() {
                let got = g
                    .mark(v, Slot::R)
                    .is_marked()
                    .then(|| g.mark(v, Slot::R).prior);
                assert_eq!(got, want[v.index()], "seed {seed}, vertex {v}");
            }
        }
    }

    #[test]
    fn mark3_agrees_with_oracle() {
        let (mut g, [root, a, b, c, stray]) = diamond();
        // One task whose destination is a; root has requested a and b...
        g.vertex_mut(root)
            .set_request_kind(0, Some(RequestKind::Vital));
        g.vertex_mut(a)
            .add_requester(dgr_graph::Requester::Vertex(root));
        let mut tasks = TaskEndpoints::new();
        tasks.push_task(Some(root), a);

        let cfg = MarkRunConfig::default();
        run_mark3(&mut g, &tasks, &cfg);
        let t = oracle::reachable_t(&g, &tasks);
        for v in [root, a, b, c, stray] {
            assert_eq!(
                t.contains(v),
                g.mark(v, Slot::T).is_marked(),
                "T mismatch at {v}"
            );
        }
    }

    #[test]
    fn mark3_empty_taskpool_is_noop() {
        let (mut g, _) = diamond();
        let stats = run_mark3(&mut g, &TaskEndpoints::new(), &MarkRunConfig::default());
        assert_eq!(stats.marked, 0);
        assert_eq!(stats.events, 0);
    }

    #[test]
    fn single_pe_works() {
        let (mut g, _) = diamond();
        let cfg = MarkRunConfig {
            num_pes: 1,
            ..Default::default()
        };
        let stats = run_mark1(&mut g, &cfg);
        assert_eq!(stats.marked, 4);
        assert_eq!(stats.remote_messages, 0, "single PE has no remote traffic");
    }

    #[test]
    fn many_pes_generate_remote_traffic() {
        let (mut g, _) = diamond();
        let cfg = MarkRunConfig {
            num_pes: 8,
            ..Default::default()
        };
        let stats = run_mark1(&mut g, &cfg);
        assert!(stats.remote_messages > 0);
    }

    #[test]
    fn reset_slot_clears_previous_cycle() {
        let (mut g, [root, ..]) = diamond();
        run_mark1(&mut g, &MarkRunConfig::default());
        assert!(g.mark(root, Slot::R).is_marked());
        reset_slot(&mut g, Slot::R);
        assert!(g.mark(root, Slot::R).is_unmarked());
        assert_eq!(g.mark(root, Slot::R).mt_cnt, 0);
    }

    #[test]
    fn marking_twice_is_idempotent() {
        let (mut g, _) = diamond();
        let s1 = run_mark1(&mut g, &MarkRunConfig::default());
        let s2 = run_mark1(&mut g, &MarkRunConfig::default());
        assert_eq!(s1.marked, s2.marked);
        assert_eq!(s1.events, s2.events);
    }
}
