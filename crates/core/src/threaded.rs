//! `mark1` on the work-stealing parallel runtime.
//!
//! Each marking task touches exactly one vertex and never holds a lock
//! while waiting on another PE — the property Section 6 uses to argue
//! that resource deadlock between marking tasks is impossible and
//! interference with the reduction process is minimal.
//!
//! This module is used by the scalability experiments (T5): the same
//! algorithm that the deterministic simulator executes runs here on one
//! OS thread per PE, on the [`StealRuntime`] — per-PE Chase–Lev deques,
//! a sharded mailbox mesh for cross-PE envelopes, and adaptive parking.
//!
//! The hot-path structure, all semantics-preserving:
//!
//! * between-pass resets are an O(1) epoch bump ([`reset_shared_r`]);
//! * the per-vertex mark state lives in the shared graph's dense
//!   [`MarkWords`](dgr_graph::MarkWords) array: the Unmarked → Transient
//!   transition is a CAS claim, the count drain of a `Return` is one
//!   `fetch_sub` — the vertex mutex is taken exactly once per reachable
//!   vertex (by the claim winner, to read the child list against
//!   concurrent mutators) and **never** on the return path, which is half
//!   of all marking tasks;
//! * tasks are allocation-free `u64` words carrying a saturating depth
//!   hint, so the runtime's LIFO pop / oldest-first steal discipline
//!   executes deep work locally and hands thieves the biggest remaining
//!   subtrees (critical-path-aware scheduling);
//! * a task for vertex `v` is still *routed* to `v`'s owner PE per the
//!   partition — the paper's distribution model, and what the envelope
//!   counter measures — but an idle PE may steal it: soundness does not
//!   depend on placement because every state transition is a CAS or an
//!   owned decrement on the shared mark words.

use std::sync::atomic::{AtomicBool, Ordering};

use dgr_graph::{markword::Claim, PeId};
use dgr_graph::{GraphStore, MarkParent, PartitionMap, PartitionStrategy, Slot, VertexId};
use dgr_sim::steal::with_depth;
use dgr_sim::{SharedGraph, SpawnScope, StealRuntime};
use dgr_telemetry::{CounterId, HeartbeatHandle, Phase, Registry};

/// Task words: `depth(6) | kind(1) | par(28) | v(28)` with the depth hint
/// in the runtime's reserved top bits. 28-bit vertex fields bound the
/// graph at ~268M vertices — far beyond any workload here, asserted at
/// pass start.
const FIELD_BITS: u32 = 28;
const FIELD_MAX: u64 = (1 << FIELD_BITS) - 1;
/// `par`/`to` sentinel for the paper's `rootpar` termination target.
const ROOTPAR: u64 = FIELD_MAX;
const KIND_RETURN: u64 = 1 << (2 * FIELD_BITS);

fn mark_task(v: VertexId, par: u64, depth: u64) -> u64 {
    with_depth((par << FIELD_BITS) | u64::from(v.raw()), depth)
}

fn return_task(to: u64, depth: u64) -> u64 {
    with_depth(KIND_RETURN | to, depth)
}

/// Owner PE of a task: where its subject vertex lives (`rootpar` returns
/// go to PE 0, which spawned the root mark).
fn route(partition: &PartitionMap, task: u64) -> PeId {
    let v = task & FIELD_MAX;
    if v == ROOTPAR {
        PeId::new(0)
    } else {
        partition.pe_of(VertexId::new(v as u32))
    }
}

/// Counters from one threaded `mark1` pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadedMarkStats {
    /// Marking tasks executed (marks + returns). `mark1` sends exactly
    /// one return per mark, and marks a first visit exactly once, so this
    /// count is schedule-independent and equals the event count of a
    /// deterministic-simulator pass over the same graph.
    pub messages: u64,
    /// Cross-PE envelopes the runtime routed through the mailbox mesh
    /// (tasks whose owner PE differed from the spawning PE).
    pub envelopes: u64,
    /// Successful steal operations across all workers.
    pub steals: u64,
    /// Steal attempts that found the victim empty or lost a race.
    pub steal_fails: u64,
    /// Times a worker parked on the idle-backoff timeout.
    pub parks: u64,
    /// Largest private spill depth any worker reached.
    pub spill_hw: u64,
}

/// Runs a complete `mark1` pass over `store` using `num_pes` OS threads,
/// returning the marked store and the number of marking tasks executed.
///
/// The R slot is reset first. Termination is detected both by the
/// algorithm (the `done` flag set by the return to `rootpar`) and by
/// runtime quiescence; the two are asserted to agree.
///
/// # Panics
///
/// Panics if the store has no root or if quiescence is reached without the
/// algorithm signalling `done`.
pub fn run_mark1_threaded(
    mut store: GraphStore,
    num_pes: u16,
    strategy: PartitionStrategy,
) -> (GraphStore, u64) {
    crate::driver::reset_slot(&mut store, Slot::R);
    let shared = SharedGraph::from_store(store);
    let stats = run_mark1_shared(&shared, num_pes, strategy);
    (shared.into_store(), stats.messages)
}

/// Resets every vertex's R slot in a shared graph (between passes): an
/// O(1) epoch bump; stale per-vertex state is reset lazily on first
/// access. Must not run concurrently with a marking pass.
pub fn reset_shared_r(shared: &SharedGraph) {
    shared.begin_mark_cycle(Slot::R);
}

/// Runs one `mark1` pass over an already-shared graph whose R slots are
/// reset, returning the pass's message counters. This is the timed core
/// of the T5 scalability experiment — the store↔shared conversions of
/// [`run_mark1_threaded`] are serial setup, not marking.
///
/// # Panics
///
/// Panics if the graph has no root or quiescence is reached without the
/// algorithm signalling `done`.
pub fn run_mark1_shared(
    shared: &SharedGraph,
    num_pes: u16,
    strategy: PartitionStrategy,
) -> ThreadedMarkStats {
    run_mark1_shared_with(shared, num_pes, strategy, &Registry::new(num_pes))
}

/// [`run_mark1_shared`] with an explicit telemetry registry: the pass is
/// wrapped in an `M_R` span, each PE's executed marking tasks land in its
/// mark-event counter, and the underlying runtime records deque depth,
/// steals, drained batch sizes and park events per PE.
///
/// # Panics
///
/// Panics under the same conditions as [`run_mark1_shared`].
pub fn run_mark1_shared_with(
    shared: &SharedGraph,
    num_pes: u16,
    strategy: PartitionStrategy,
    telem: &Registry,
) -> ThreadedMarkStats {
    run_mark1_shared_observed(
        shared,
        num_pes,
        strategy,
        telem,
        &HeartbeatHandle::default(),
    )
}

/// [`run_mark1_shared_with`] plus a liveness pulse: the pass brackets an
/// `M_R` phase on `hb` and the runtime beats delivery progress per local
/// drain run, so the `dgr-observe` watchdog can supervise a long pass
/// from another thread. With the default (no-op) handle this is exactly
/// [`run_mark1_shared_with`].
///
/// # Panics
///
/// Panics under the same conditions as [`run_mark1_shared`].
pub fn run_mark1_shared_observed(
    shared: &SharedGraph,
    num_pes: u16,
    strategy: PartitionStrategy,
    telem: &Registry,
    hb: &HeartbeatHandle,
) -> ThreadedMarkStats {
    let root = shared.root().expect("marking needs a root");
    assert!(
        (shared.capacity() as u64) < ROOTPAR,
        "graph too large for 28-bit task fields"
    );
    let partition = PartitionMap::new(num_pes, shared.capacity(), strategy);
    let done = AtomicBool::new(false);
    // The pass's epoch is fixed before threads spawn (spawning publishes
    // it); every mark-word access below is normalized against it.
    let epoch = shared.mark_epoch(Slot::R);
    let marks = shared.marks();

    let _pass = telem.span(0, 0, Phase::Mr, "mark1_threaded");
    hb.begin_phase(0, Phase::Mr);
    let seed = mark_task(root, ROOTPAR, 0);
    let stats = StealRuntime::new(num_pes).run_observed(
        vec![(route(&partition, seed), seed)],
        |scope: &mut SpawnScope<'_>, task: u64| {
            telem.pe(scope.me().raw()).inc(CounterId::MarkEvents);
            let depth = dgr_sim::steal::task_depth(task);
            let emit = |scope: &mut SpawnScope<'_>, t: u64| {
                scope.spawn(route(&partition, t), t);
            };
            if task & KIND_RETURN == 0 {
                // A mark task: claim `v` for this cycle or settle as a
                // duplicate visit.
                let v = VertexId::new((task & FIELD_MAX) as u32);
                let par = (task >> FIELD_BITS) & FIELD_MAX;
                // Lock-free fast path: a current-epoch color other than
                // Unmarked means this mark1 returns immediately.
                let probed = marks.probe(v.index(), epoch);
                if probed.is_some_and(|c| c != dgr_graph::Color::Unmarked) {
                    emit(scope, return_task(par, depth));
                    return;
                }
                // The winner of the CAS claim owns the expansion; the
                // vertex mutex is held only for the child-list read (the
                // one field a concurrent mutator could be rewriting).
                let guard = shared.lock(v);
                if guard.is_free() {
                    drop(guard);
                    emit(scope, return_task(par, depth));
                    return;
                }
                let mut n_children = 0u32;
                guard.for_each_r_child(|_| n_children += 1);
                let parent = if par == ROOTPAR {
                    MarkParent::RootPar
                } else {
                    MarkParent::Vertex(VertexId::new(par as u32))
                };
                match marks.try_claim(v.index(), epoch, n_children, parent) {
                    Claim::Won(_) if n_children > 0 => {
                        // Spawn deepest-last so the runtime chains the
                        // final child and thieves get the first ones.
                        guard.for_each_r_child(|c| {
                            emit(scope, mark_task(c, u64::from(v.raw()), depth + 1));
                        });
                        drop(guard);
                    }
                    Claim::Won(_) | Claim::Lost => {
                        drop(guard);
                        emit(scope, return_task(par, depth));
                    }
                }
            } else {
                // A return task: drain one outstanding child of `to`.
                let to = task & FIELD_MAX;
                if to == ROOTPAR {
                    // Relaxed: asserted only after the runtime joins its
                    // workers, which synchronizes.
                    done.store(true, Ordering::Relaxed);
                    return;
                }
                let v = VertexId::new(to as u32);
                if let Some(parent) = marks.complete_child(v.index(), epoch) {
                    let t = match parent {
                        MarkParent::RootPar => return_task(ROOTPAR, depth),
                        MarkParent::Vertex(p) => {
                            return_task(u64::from(p.raw()), depth.saturating_sub(1))
                        }
                        MarkParent::TaskRootPar => {
                            unreachable!("mark1 never uses the task root")
                        }
                    };
                    emit(scope, t);
                }
            }
        },
        telem,
        hb,
    );
    hb.end_phase();
    if !done.load(Ordering::Relaxed) {
        // Flight-record before panicking: the runtime is quiescent, so
        // the in-flight set is empty — the event-ring tail and counters
        // are what's left to explain the missing termination signal.
        let reason = "quiescent without termination signal";
        let dropped = telem.dropped_events();
        let events = telem.drain_events();
        match dgr_telemetry::write_flight(reason, 0, &events, dropped, &telem.snapshot(), &[]) {
            Ok(path) => eprintln!("flight recorder: wrote {}", path.display()),
            Err(e) => eprintln!("flight recorder: dump failed: {e}"),
        }
        panic!("{reason}");
    }
    ThreadedMarkStats {
        messages: stats.executed,
        envelopes: stats.envelopes,
        steals: stats.steals,
        steal_fails: stats.steal_fails,
        parks: stats.parks,
        spill_hw: stats.spill_hw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::{oracle, NodeLabel};

    /// A binary tree of the given depth plus `stray` disconnected vertices.
    fn tree(depth: usize, stray: usize) -> GraphStore {
        let n = (1 << (depth + 1)) - 1;
        let mut g = GraphStore::with_capacity(n + stray);
        let ids: Vec<_> = (0..n)
            .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
            .collect();
        for i in 0..n {
            for child in [2 * i + 1, 2 * i + 2] {
                if child < n {
                    g.connect(ids[i], ids[child]);
                }
            }
        }
        for _ in 0..stray {
            g.alloc(NodeLabel::lit_int(-1)).unwrap();
        }
        g.set_root(ids[0]);
        g
    }

    #[test]
    fn threaded_mark1_agrees_with_oracle() {
        for pes in [1u16, 2, 4, 8] {
            let g = tree(8, 37);
            let (marked, handled) = run_mark1_threaded(g, pes, PartitionStrategy::Modulo);
            assert!(handled > 0);
            let r = oracle::reachable_r(&marked);
            for v in marked.live_ids() {
                assert_eq!(
                    r.contains(v),
                    marked.mark(v, Slot::R).is_marked(),
                    "{pes} PEs, vertex {v}"
                );
                assert_eq!(marked.mark(v, Slot::R).mt_cnt, 0);
            }
        }
    }

    #[test]
    fn threaded_mark1_handles_cycles_and_sharing() {
        let mut g = GraphStore::with_capacity(64);
        let ids: Vec<_> = (0..32)
            .map(|i| g.alloc(NodeLabel::lit_int(i)).unwrap())
            .collect();
        // Dense strongly-connected mess.
        for i in 0..32usize {
            g.connect(ids[i], ids[(i * 7 + 3) % 32]);
            g.connect(ids[i], ids[(i * 5 + 11) % 32]);
            g.connect(ids[i], ids[(i + 1) % 32]);
        }
        g.set_root(ids[0]);
        let (marked, _) = run_mark1_threaded(g, 4, PartitionStrategy::Block);
        for &v in &ids {
            assert!(marked.mark(v, Slot::R).is_marked());
        }
    }

    #[test]
    fn threaded_matches_simulated_mark_set() {
        let g = tree(6, 11);
        let mut g_sim = g.clone();
        crate::driver::run_mark1(&mut g_sim, &crate::driver::MarkRunConfig::default());
        let (g_thr, _) = run_mark1_threaded(g, 4, PartitionStrategy::Modulo);
        for v in g_sim.ids() {
            assert_eq!(
                g_sim.mark(v, Slot::R).is_marked(),
                g_thr.mark(v, Slot::R).is_marked(),
                "differential mismatch at {v}"
            );
        }
    }

    #[test]
    fn threaded_message_count_matches_simulator_events() {
        // mark1 sends one mark per first visit or revisit and exactly one
        // return per mark, so the task count is schedule-independent:
        // the threaded pass must execute exactly as many tasks as the
        // deterministic simulator delivers events.
        let g = tree(7, 5);
        let mut g_sim = g.clone();
        let sim_stats =
            crate::driver::run_mark1(&mut g_sim, &crate::driver::MarkRunConfig::default());
        for pes in [1u16, 3, 8] {
            let (_, messages) = run_mark1_threaded(g.clone(), pes, PartitionStrategy::Modulo);
            assert_eq!(messages, sim_stats.events, "{pes} PEs");
        }
    }

    #[test]
    fn repeated_shared_passes_with_epoch_reset() {
        // Re-running after reset_shared_r must redo the full pass (same
        // message count), not see stale marks from the previous epoch.
        let shared = SharedGraph::from_store({
            let mut g = tree(5, 3);
            crate::driver::reset_slot(&mut g, Slot::R);
            g
        });
        let first = run_mark1_shared(&shared, 4, PartitionStrategy::Modulo);
        for _ in 0..3 {
            reset_shared_r(&shared);
            let again = run_mark1_shared(&shared, 4, PartitionStrategy::Modulo);
            assert_eq!(again.messages, first.messages);
        }
        let back = shared.into_store();
        assert!(back.mark(back.root().unwrap(), Slot::R).is_marked());
    }
}
