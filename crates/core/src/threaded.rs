//! `mark1` on the real parallel runtime.
//!
//! Each marking task locks exactly one vertex for a bounded amount of work
//! and never holds a lock while waiting on another PE — the property
//! Section 6 uses to argue that resource deadlock between marking tasks is
//! impossible and interference with the reduction process is minimal.
//!
//! This module is used by the scalability experiments (T5): the same
//! algorithm that the deterministic simulator executes runs here on one
//! OS thread per PE, against a [`SharedGraph`] with per-vertex locks.
//!
//! Three hot-path optimizations, all semantics-preserving:
//!
//! * between-pass resets are an O(1) epoch bump ([`reset_shared_r`]);
//! * a lock-free probe of the vertex's published `(epoch, color)` word
//!   settles already-visited vertices without taking their mutex — sound
//!   because a vertex's color within one pass only moves forward
//!   (Unmarked → Transient → Marked), so an observed non-Unmarked color
//!   can only ever lead to the same immediate-return branch the locked
//!   path would take;
//! * each PE drains its local task pool through a reusable thread-local
//!   scratch buffer instead of allocating a fresh one per message.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dgr_graph::{Color, GraphStore, MarkParent, PartitionMap, PartitionStrategy, Slot};
use dgr_sim::{Envelope, Lane, SharedGraph, ThreadedRuntime};
use dgr_telemetry::{CounterId, HeartbeatHandle, Phase, Registry};

use crate::msg::MarkMsg;

fn route(partition: &PartitionMap, msg: MarkMsg) -> Envelope<MarkMsg> {
    let pe = msg
        .dest_vertex()
        .map(|v| partition.pe_of(v))
        .unwrap_or(dgr_graph::PeId::new(0));
    Envelope::new(pe, Lane::Marking, msg)
}

/// Counters from one threaded `mark1` pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadedMarkStats {
    /// Marking tasks executed (marks + returns). `mark1` sends exactly
    /// one return per mark, and marks a first visit exactly once, so this
    /// count is schedule-independent and equals the event count of a
    /// deterministic-simulator pass over the same graph.
    pub messages: u64,
    /// Cross-PE messages the runtime delivered (envelopes after local
    /// draining, counted individually inside batches).
    pub envelopes: u64,
}

/// Runs a complete `mark1` pass over `store` using `num_pes` OS threads,
/// returning the marked store and the number of marking tasks executed.
///
/// The R slot is reset first. Termination is detected both by the
/// algorithm (the `done` flag set by the return to `rootpar`) and by
/// runtime quiescence; the two are asserted to agree.
///
/// # Panics
///
/// Panics if the store has no root or if quiescence is reached without the
/// algorithm signalling `done`.
pub fn run_mark1_threaded(
    mut store: GraphStore,
    num_pes: u16,
    strategy: PartitionStrategy,
) -> (GraphStore, u64) {
    crate::driver::reset_slot(&mut store, Slot::R);
    let shared = SharedGraph::from_store(store);
    let stats = run_mark1_shared(&shared, num_pes, strategy);
    (shared.into_store(), stats.messages)
}

/// Resets every vertex's R slot in a shared graph (between passes): an
/// O(1) epoch bump; stale per-vertex state is reset lazily on first
/// access. Must not run concurrently with a marking pass.
pub fn reset_shared_r(shared: &SharedGraph) {
    shared.begin_mark_cycle(Slot::R);
}

thread_local! {
    /// Reusable local task pool for [`run_mark1_shared`]: drained empty
    /// by the end of every handler invocation, so the buffer (and its
    /// grown capacity) is reused across messages and passes.
    static WORK: RefCell<Vec<MarkMsg>> = const { RefCell::new(Vec::new()) };
}

/// Runs one `mark1` pass over an already-shared graph whose R slots are
/// reset, returning the pass's message counters. This is the timed core
/// of the T5 scalability experiment — the store↔shared conversions of
/// [`run_mark1_threaded`] are serial setup, not marking.
///
/// # Panics
///
/// Panics if the graph has no root or quiescence is reached without the
/// algorithm signalling `done`.
pub fn run_mark1_shared(
    shared: &SharedGraph,
    num_pes: u16,
    strategy: PartitionStrategy,
) -> ThreadedMarkStats {
    run_mark1_shared_with(shared, num_pes, strategy, &Registry::new(num_pes))
}

/// [`run_mark1_shared`] with an explicit telemetry registry: the pass is
/// wrapped in an `M_R` span, each PE's executed marking tasks land in its
/// mark-event counter, and the underlying runtime records mailbox depth,
/// batch sizes and park events per PE.
///
/// # Panics
///
/// Panics under the same conditions as [`run_mark1_shared`].
pub fn run_mark1_shared_with(
    shared: &SharedGraph,
    num_pes: u16,
    strategy: PartitionStrategy,
    telem: &Registry,
) -> ThreadedMarkStats {
    run_mark1_shared_observed(
        shared,
        num_pes,
        strategy,
        telem,
        &HeartbeatHandle::default(),
    )
}

/// [`run_mark1_shared_with`] plus a liveness pulse: the pass brackets an
/// `M_R` phase on `hb` and the runtime beats delivery progress per work
/// item, so the `dgr-observe` watchdog can supervise a long pass from
/// another thread. With the default (no-op) handle this is exactly
/// [`run_mark1_shared_with`].
///
/// # Panics
///
/// Panics under the same conditions as [`run_mark1_shared`].
pub fn run_mark1_shared_observed(
    shared: &SharedGraph,
    num_pes: u16,
    strategy: PartitionStrategy,
    telem: &Registry,
    hb: &HeartbeatHandle,
) -> ThreadedMarkStats {
    let root = shared.root().expect("marking needs a root");
    let partition = PartitionMap::new(num_pes, shared.capacity(), strategy);
    let done = AtomicBool::new(false);
    let messages = AtomicU64::new(0);
    // The pass's epoch is fixed before threads spawn (spawning publishes
    // it); every slot access below is normalized against it.
    let epoch = shared.mark_epoch(Slot::R);

    let _pass = telem.span(0, 0, Phase::Mr, "mark1_threaded");
    hb.begin_phase(0, Phase::Mr);
    let envelopes = ThreadedRuntime::new(num_pes).run_observed(
        vec![route(
            &partition,
            MarkMsg::Mark1 {
                v: root,
                par: MarkParent::RootPar,
            },
        )],
        |ctx, msg: MarkMsg| {
            // A PE drains its own task pool locally; only marking tasks
            // addressed to another PE's partition become messages. Each
            // task still locks at most one vertex for bounded work.
            WORK.with(|work| {
                let mut work = work.borrow_mut();
                work.push(msg);
                let mut executed = 0u64;
                let emit = |work: &mut Vec<MarkMsg>, m: MarkMsg| {
                    let env = route(&partition, m);
                    if env.dst == ctx.me() {
                        work.push(m);
                    } else {
                        ctx.send(env);
                    }
                };
                while let Some(m) = work.pop() {
                    executed += 1;
                    match m {
                        MarkMsg::Mark1 { v, par } => {
                            // Lock-free fast path: a current-epoch color
                            // other than Unmarked means this mark1 would
                            // return immediately — no lock needed.
                            let probed = shared.r_probe(v, epoch);
                            if probed.is_some_and(|c| c != Color::Unmarked) {
                                emit(
                                    &mut work,
                                    MarkMsg::Return {
                                        slot: Slot::R,
                                        to: par,
                                    },
                                );
                                continue;
                            }
                            let mut guard = shared.lock(v);
                            if guard.is_free() || !guard.mark_at(Slot::R, epoch).is_unmarked() {
                                drop(guard);
                                emit(
                                    &mut work,
                                    MarkMsg::Return {
                                        slot: Slot::R,
                                        to: par,
                                    },
                                );
                                continue;
                            }
                            let mut n_children = 0u32;
                            guard.for_each_r_child(|_| n_children += 1);
                            let s = guard.mark_at_mut(Slot::R, epoch);
                            s.mt_par = Some(par);
                            s.mt_cnt += n_children;
                            let color = if n_children == 0 {
                                Color::Marked
                            } else {
                                Color::Transient
                            };
                            s.color = color;
                            // Publish while holding the lock: the Release
                            // store is the transition's last vertex write.
                            shared.publish_r(v, epoch, color);
                            if n_children == 0 {
                                drop(guard);
                                emit(
                                    &mut work,
                                    MarkMsg::Return {
                                        slot: Slot::R,
                                        to: par,
                                    },
                                );
                            } else {
                                // Emitting under the lock is safe — no
                                // other lock is taken — and avoids
                                // materializing the child list.
                                guard.for_each_r_child(|c| {
                                    emit(
                                        &mut work,
                                        MarkMsg::Mark1 {
                                            v: c,
                                            par: MarkParent::Vertex(v),
                                        },
                                    );
                                });
                                drop(guard);
                            }
                        }
                        MarkMsg::Return { to, .. } => match to {
                            MarkParent::RootPar => {
                                // Relaxed: asserted only after the runtime
                                // joins its workers, which synchronizes.
                                done.store(true, Ordering::Relaxed);
                            }
                            MarkParent::TaskRootPar => {
                                unreachable!("mark1 never uses the task root")
                            }
                            MarkParent::Vertex(v) => {
                                let mut guard = shared.lock(v);
                                let s = guard.mark_at_mut(Slot::R, epoch);
                                debug_assert!(s.mt_cnt > 0);
                                s.mt_cnt -= 1;
                                if s.mt_cnt == 0 {
                                    s.color = Color::Marked;
                                    let par = s.mt_par.expect("completing vertex has a parent");
                                    shared.publish_r(v, epoch, Color::Marked);
                                    drop(guard);
                                    emit(
                                        &mut work,
                                        MarkMsg::Return {
                                            slot: Slot::R,
                                            to: par,
                                        },
                                    );
                                }
                            }
                        },
                        other => unreachable!("threaded mark1 pass received {other:?}"),
                    }
                }
                telem
                    .pe(ctx.me().raw())
                    .add(CounterId::MarkEvents, executed);
                // Relaxed: read once after the runtime joins.
                messages.fetch_add(executed, Ordering::Relaxed);
            });
        },
        telem,
        hb,
    );
    hb.end_phase();
    if !done.load(Ordering::Relaxed) {
        // Flight-record before panicking: the runtime is quiescent, so
        // the in-flight set is empty — the event-ring tail and counters
        // are what's left to explain the missing termination signal.
        let reason = "quiescent without termination signal";
        let dropped = telem.dropped_events();
        let events = telem.drain_events();
        match dgr_telemetry::write_flight(reason, 0, &events, dropped, &telem.snapshot(), &[]) {
            Ok(path) => eprintln!("flight recorder: wrote {}", path.display()),
            Err(e) => eprintln!("flight recorder: dump failed: {e}"),
        }
        panic!("{reason}");
    }
    ThreadedMarkStats {
        messages: messages.load(Ordering::Relaxed),
        envelopes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::{oracle, NodeLabel};

    /// A binary tree of the given depth plus `stray` disconnected vertices.
    fn tree(depth: usize, stray: usize) -> GraphStore {
        let n = (1 << (depth + 1)) - 1;
        let mut g = GraphStore::with_capacity(n + stray);
        let ids: Vec<_> = (0..n)
            .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
            .collect();
        for i in 0..n {
            for child in [2 * i + 1, 2 * i + 2] {
                if child < n {
                    g.connect(ids[i], ids[child]);
                }
            }
        }
        for _ in 0..stray {
            g.alloc(NodeLabel::lit_int(-1)).unwrap();
        }
        g.set_root(ids[0]);
        g
    }

    #[test]
    fn threaded_mark1_agrees_with_oracle() {
        for pes in [1u16, 2, 4, 8] {
            let g = tree(8, 37);
            let (marked, handled) = run_mark1_threaded(g, pes, PartitionStrategy::Modulo);
            assert!(handled > 0);
            let r = oracle::reachable_r(&marked);
            for v in marked.live_ids() {
                assert_eq!(
                    r.contains(v),
                    marked.mark(v, Slot::R).is_marked(),
                    "{pes} PEs, vertex {v}"
                );
                assert_eq!(marked.mark(v, Slot::R).mt_cnt, 0);
            }
        }
    }

    #[test]
    fn threaded_mark1_handles_cycles_and_sharing() {
        let mut g = GraphStore::with_capacity(64);
        let ids: Vec<_> = (0..32)
            .map(|i| g.alloc(NodeLabel::lit_int(i)).unwrap())
            .collect();
        // Dense strongly-connected mess.
        for i in 0..32usize {
            g.connect(ids[i], ids[(i * 7 + 3) % 32]);
            g.connect(ids[i], ids[(i * 5 + 11) % 32]);
            g.connect(ids[i], ids[(i + 1) % 32]);
        }
        g.set_root(ids[0]);
        let (marked, _) = run_mark1_threaded(g, 4, PartitionStrategy::Block);
        for &v in &ids {
            assert!(marked.mark(v, Slot::R).is_marked());
        }
    }

    #[test]
    fn threaded_matches_simulated_mark_set() {
        let g = tree(6, 11);
        let mut g_sim = g.clone();
        crate::driver::run_mark1(&mut g_sim, &crate::driver::MarkRunConfig::default());
        let (g_thr, _) = run_mark1_threaded(g, 4, PartitionStrategy::Modulo);
        for v in g_sim.ids() {
            assert_eq!(
                g_sim.mark(v, Slot::R).is_marked(),
                g_thr.mark(v, Slot::R).is_marked(),
                "differential mismatch at {v}"
            );
        }
    }

    #[test]
    fn threaded_message_count_matches_simulator_events() {
        // mark1 sends one mark per first visit or revisit and exactly one
        // return per mark, so the task count is schedule-independent:
        // the threaded pass must execute exactly as many tasks as the
        // deterministic simulator delivers events.
        let g = tree(7, 5);
        let mut g_sim = g.clone();
        let sim_stats =
            crate::driver::run_mark1(&mut g_sim, &crate::driver::MarkRunConfig::default());
        for pes in [1u16, 3, 8] {
            let (_, messages) = run_mark1_threaded(g.clone(), pes, PartitionStrategy::Modulo);
            assert_eq!(messages, sim_stats.events, "{pes} PEs");
        }
    }

    #[test]
    fn repeated_shared_passes_with_epoch_reset() {
        // Re-running after reset_shared_r must redo the full pass (same
        // message count), not see stale marks from the previous epoch.
        let shared = SharedGraph::from_store({
            let mut g = tree(5, 3);
            crate::driver::reset_slot(&mut g, Slot::R);
            g
        });
        let first = run_mark1_shared(&shared, 4, PartitionStrategy::Modulo);
        for _ in 0..3 {
            reset_shared_r(&shared);
            let again = run_mark1_shared(&shared, 4, PartitionStrategy::Modulo);
            assert_eq!(again.messages, first.messages);
        }
        let back = shared.into_store();
        assert!(back.mark(back.root().unwrap(), Slot::R).is_marked());
    }
}
