//! `mark1` on the real parallel runtime.
//!
//! Each marking task locks exactly one vertex for a bounded amount of work
//! and never holds a lock while waiting on another PE — the property
//! Section 6 uses to argue that resource deadlock between marking tasks is
//! impossible and interference with the reduction process is minimal.
//!
//! This module is used by the scalability experiments (T5): the same
//! algorithm that the deterministic simulator executes runs here on one
//! OS thread per PE, against a [`SharedGraph`] with per-vertex locks.

use std::sync::atomic::{AtomicBool, Ordering};

use dgr_graph::{Color, GraphStore, MarkParent, PartitionMap, PartitionStrategy, Slot, VertexId};
use dgr_sim::{Envelope, Lane, SharedGraph, ThreadedRuntime};

use crate::msg::MarkMsg;

fn route(partition: &PartitionMap, msg: MarkMsg) -> Envelope<MarkMsg> {
    let pe = msg
        .dest_vertex()
        .map(|v| partition.pe_of(v))
        .unwrap_or(dgr_graph::PeId::new(0));
    Envelope::new(pe, Lane::Marking, msg)
}

/// Runs a complete `mark1` pass over `store` using `num_pes` OS threads,
/// returning the marked store and the number of marking messages handled.
///
/// The R slot is reset first. Termination is detected both by the
/// algorithm (the `done` flag set by the return to `rootpar`) and by
/// runtime quiescence; the two are asserted to agree.
///
/// # Panics
///
/// Panics if the store has no root or if quiescence is reached without the
/// algorithm signalling `done`.
pub fn run_mark1_threaded(
    mut store: GraphStore,
    num_pes: u16,
    strategy: PartitionStrategy,
) -> (GraphStore, u64) {
    crate::driver::reset_slot(&mut store, Slot::R);
    let shared = SharedGraph::from_store(store);
    let handled = run_mark1_shared(&shared, num_pes, strategy);
    (shared.into_store(), handled)
}

/// Resets every vertex's R slot in a shared graph (between passes).
pub fn reset_shared_r(shared: &SharedGraph) {
    for i in 0..shared.capacity() {
        shared.lock(VertexId::new(i as u32)).mr.reset();
    }
}

/// Runs one `mark1` pass over an already-shared graph whose R slots are
/// reset, returning the number of cross-PE marking messages. This is the
/// timed core of the T5 scalability experiment — the store↔shared
/// conversions of [`run_mark1_threaded`] are serial setup, not marking.
///
/// # Panics
///
/// Panics if the graph has no root or quiescence is reached without the
/// algorithm signalling `done`.
pub fn run_mark1_shared(shared: &SharedGraph, num_pes: u16, strategy: PartitionStrategy) -> u64 {
    let root = shared.root().expect("marking needs a root");
    let partition = PartitionMap::new(num_pes, shared.capacity(), strategy);
    let done = AtomicBool::new(false);

    let handled = ThreadedRuntime::new(num_pes).run(
        vec![route(
            &partition,
            MarkMsg::Mark1 {
                v: root,
                par: MarkParent::RootPar,
            },
        )],
        |ctx, msg: MarkMsg| {
            // A PE drains its own task pool locally; only marking tasks
            // addressed to another PE's partition become messages. Each
            // task still locks exactly one vertex for bounded work.
            let mut work = vec![msg];
            let emit = |work: &mut Vec<MarkMsg>, m: MarkMsg| {
                let env = route(&partition, m);
                if env.dst == ctx.me() {
                    work.push(m);
                } else {
                    ctx.send(env);
                }
            };
            while let Some(m) = work.pop() {
                match m {
                    MarkMsg::Mark1 { v, par } => {
                        let mut guard = shared.lock(v);
                        if guard.mr.is_unmarked() && !guard.is_free() {
                            guard.mr.color = Color::Transient;
                            guard.mr.mt_par = Some(par);
                            let children: Vec<VertexId> = guard.r_children();
                            guard.mr.mt_cnt += children.len() as u32;
                            if children.is_empty() {
                                guard.mr.color = Color::Marked;
                                drop(guard);
                                emit(
                                    &mut work,
                                    MarkMsg::Return {
                                        slot: Slot::R,
                                        to: par,
                                    },
                                );
                            } else {
                                drop(guard);
                                for c in children {
                                    emit(
                                        &mut work,
                                        MarkMsg::Mark1 {
                                            v: c,
                                            par: MarkParent::Vertex(v),
                                        },
                                    );
                                }
                            }
                        } else {
                            drop(guard);
                            emit(
                                &mut work,
                                MarkMsg::Return {
                                    slot: Slot::R,
                                    to: par,
                                },
                            );
                        }
                    }
                    MarkMsg::Return { to, .. } => match to {
                        MarkParent::RootPar => {
                            done.store(true, Ordering::SeqCst);
                        }
                        MarkParent::TaskRootPar => {
                            unreachable!("mark1 never uses the task root")
                        }
                        MarkParent::Vertex(v) => {
                            let mut guard = shared.lock(v);
                            debug_assert!(guard.mr.mt_cnt > 0);
                            guard.mr.mt_cnt -= 1;
                            if guard.mr.mt_cnt == 0 {
                                guard.mr.color = Color::Marked;
                                let par =
                                    guard.mr.mt_par.expect("completing vertex has a parent");
                                drop(guard);
                                emit(
                                    &mut work,
                                    MarkMsg::Return {
                                        slot: Slot::R,
                                        to: par,
                                    },
                                );
                            }
                        }
                    },
                    other => unreachable!("threaded mark1 pass received {other:?}"),
                }
            }
        },
    );
    assert!(
        done.load(Ordering::SeqCst),
        "quiescent without termination signal"
    );
    handled
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::{oracle, NodeLabel};

    /// A binary tree of the given depth plus `stray` disconnected vertices.
    fn tree(depth: usize, stray: usize) -> GraphStore {
        let n = (1 << (depth + 1)) - 1;
        let mut g = GraphStore::with_capacity(n + stray);
        let ids: Vec<_> = (0..n)
            .map(|i| g.alloc(NodeLabel::lit_int(i as i64)).unwrap())
            .collect();
        for i in 0..n {
            for child in [2 * i + 1, 2 * i + 2] {
                if child < n {
                    g.connect(ids[i], ids[child]);
                }
            }
        }
        for _ in 0..stray {
            g.alloc(NodeLabel::lit_int(-1)).unwrap();
        }
        g.set_root(ids[0]);
        g
    }

    #[test]
    fn threaded_mark1_agrees_with_oracle() {
        for pes in [1u16, 2, 4, 8] {
            let g = tree(8, 37);
            let (marked, handled) = run_mark1_threaded(g, pes, PartitionStrategy::Modulo);
            assert!(handled > 0);
            let r = oracle::reachable_r(&marked);
            for v in marked.live_ids() {
                assert_eq!(
                    r.contains(v),
                    marked.vertex(v).mr.is_marked(),
                    "{pes} PEs, vertex {v}"
                );
                assert_eq!(marked.vertex(v).mr.mt_cnt, 0);
            }
        }
    }

    #[test]
    fn threaded_mark1_handles_cycles_and_sharing() {
        let mut g = GraphStore::with_capacity(64);
        let ids: Vec<_> = (0..32)
            .map(|i| g.alloc(NodeLabel::lit_int(i)).unwrap())
            .collect();
        // Dense strongly-connected mess.
        for i in 0..32usize {
            g.connect(ids[i], ids[(i * 7 + 3) % 32]);
            g.connect(ids[i], ids[(i * 5 + 11) % 32]);
            g.connect(ids[i], ids[(i + 1) % 32]);
        }
        g.set_root(ids[0]);
        let (marked, _) = run_mark1_threaded(g, 4, PartitionStrategy::Block);
        for &v in &ids {
            assert!(marked.vertex(v).mr.is_marked());
        }
    }

    #[test]
    fn threaded_matches_simulated_mark_set() {
        let g = tree(6, 11);
        let mut g_sim = g.clone();
        crate::driver::run_mark1(&mut g_sim, &crate::driver::MarkRunConfig::default());
        let (g_thr, _) = run_mark1_threaded(g, 4, PartitionStrategy::Modulo);
        for v in g_sim.ids() {
            assert_eq!(
                g_sim.vertex(v).mr.is_marked(),
                g_thr.vertex(v).mr.is_marked(),
                "differential mismatch at {v}"
            );
        }
    }
}
