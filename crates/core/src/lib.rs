//! Decentralized concurrent graph marking — the contribution of Hudak's
//! *Distributed Task and Memory Management* (PODC 1983).
//!
//! The algorithm marks a distributed graph **while the graph is being
//! mutated**, using no centralized data or control. It works by dynamically
//! building a spanning *marking tree* over the computation graph:
//!
//! * a **mark task** propagates forward from vertex to vertex, turning
//!   unmarked vertices *transient*, recording the marking-tree parent
//!   (`mt-par`) and counting outstanding child marks (`mt-cnt`);
//! * a **return task** propagates backward: when all marks spawned from a
//!   vertex have returned, the vertex becomes *marked* and a return is sent
//!   to its marking-tree parent;
//! * the **mutator cooperates**: the primitives `delete-reference`,
//!   `add-reference` and `expand-node` ([`coop`]) splice extra marking
//!   activity into the tree so that the two marking invariants hold
//!   (checked by [`invariants`]):
//!   1. every transient vertex has an outstanding mark task on each child,
//!      reflected in `mt-cnt`;
//!   2. a marked vertex never points to an unmarked vertex.
//!
//! Three mark-task flavors are implemented, exactly as in the paper:
//!
//! | Task | Figure | Traces | Slot | Purpose |
//! |---|---|---|---|---|
//! | `mark1` | 4-1 | `args(v)` | R | the simplified algorithm |
//! | `mark2` | 5-1 | `args(v)` with priorities 3/2/1 | R | `M_R`: classify `R_v`/`R_e`/`R_r` |
//! | `mark3` | 5-3 | `requested(v) ∪ (args(v) − req-args(v))` | T | `M_T`: the task-reachable set |
//!
//! Marking tasks are ordinary messages; [`handle_mark`] executes one
//! atomically. The [`driver`] module runs complete marking passes on the
//! deterministic simulator, and [`threaded`] runs `mark1` on the real
//! parallel runtime.
//!
//! # Example: a complete `mark1` pass
//!
//! ```
//! use dgr_core::driver::{run_mark1, MarkRunConfig};
//! use dgr_graph::{GraphStore, NodeLabel, Slot};
//!
//! # fn main() -> Result<(), dgr_graph::GraphError> {
//! let mut g = GraphStore::with_capacity(4);
//! let a = g.alloc(NodeLabel::lit_int(1))?;
//! let b = g.alloc(NodeLabel::lit_int(2))?;
//! let root = g.alloc(NodeLabel::If)?;
//! g.connect(root, a);
//! g.connect(root, b);
//! g.set_root(root);
//!
//! let stats = run_mark1(&mut g, &MarkRunConfig::default());
//! assert!(g.mark(a, Slot::R).is_marked());
//! assert!(g.mark(root, Slot::R).is_marked());
//! assert_eq!(stats.marked, 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compressed;
pub mod coop;
pub mod driver;
pub mod footprint;
mod handler;
pub mod invariants;
mod msg;
mod state;
pub mod threaded;

pub use handler::handle_mark;
pub use msg::MarkMsg;
pub use state::{MarkState, RMode};
