//! Checkers for the marking invariants of Sections 4.2 / 5.4.
//!
//! These are test/diagnostic utilities: given the graph, the pending
//! marking messages, and the marking state, they verify the three
//! invariants the correctness proofs rest on. They are O(|V| · |pending|)
//! and intended to run between simulator events in tests, not in
//! production loops.

use std::collections::HashMap;

use dgr_graph::{GraphStore, MarkParent, Slot, VertexId};

use crate::msg::MarkMsg;
use crate::state::MarkState;

fn is_mark_for_slot(m: &MarkMsg, slot: Slot) -> Option<(VertexId, MarkParent)> {
    match *m {
        MarkMsg::Mark1 { v, par } if slot == Slot::R => Some((v, par)),
        MarkMsg::Mark2 { v, par, .. } if slot == Slot::R => Some((v, par)),
        MarkMsg::Mark3 { v, par } if slot == Slot::T => Some((v, par)),
        _ => None,
    }
}

fn children_of(g: &GraphStore, slot: Slot, v: VertexId) -> Vec<VertexId> {
    match slot {
        Slot::R => g.vertex(v).r_children(),
        Slot::T => g.vertex(v).t_children(),
    }
}

/// Checks all three marking invariants for one slot. `pending` must be the
/// complete set of undelivered marking messages.
///
/// * **Invariant 1** — for every transient vertex `v`, every unmarked
///   child of `v` has a pending mark task targeting it.
/// * **Invariant 2** — no marked vertex has an unmarked child.
/// * **Invariant 3** — `mt-cnt(v)` equals the number of unreturned mark
///   tasks spawned from `v`: pending marks with parent `v`, plus pending
///   returns to `v`, plus transient vertices whose `mt-par` is `v`.
///
/// # Errors
///
/// Returns a human-readable description of the first violation found.
pub fn check_invariants(
    g: &GraphStore,
    slot: Slot,
    pending: &[MarkMsg],
    state: &MarkState,
) -> Result<(), String> {
    check_invariants_where(g, slot, pending, state, |_, _| false)
}

/// [`check_invariants`] with an *exemption predicate* for invariants 1/2.
///
/// `M_T` has snapshot semantics: a T-arc grown out of an already-finished
/// (T-marked) vertex deliberately spawns no mark ([`crate::coop::coop_t_arc`]),
/// so `marked → unmarked` along such an arc is not a protocol violation —
/// the deadlock report's activity screen covers it. Callers that track
/// which arcs were created under those conditions (e.g. the model checker
/// in `dgr-check`) pass them here as `exempt(parent, child)`; invariant 3
/// is never exempted.
///
/// # Errors
///
/// Returns a human-readable description of the first violation found.
pub fn check_invariants_where(
    g: &GraphStore,
    slot: Slot,
    pending: &[MarkMsg],
    state: &MarkState,
    exempt: impl Fn(VertexId, VertexId) -> bool,
) -> Result<(), String> {
    // Tally pending messages by marking-tree parent.
    let mut owed: HashMap<MarkParent, u32> = HashMap::new();
    let mut pending_mark_on: HashMap<VertexId, u32> = HashMap::new();
    for m in pending {
        if let Some((v, par)) = is_mark_for_slot(m, slot) {
            *owed.entry(par).or_default() += 1;
            *pending_mark_on.entry(v).or_default() += 1;
        }
        if let MarkMsg::Return { slot: s, to } = *m {
            if s == slot {
                *owed.entry(to).or_default() += 1;
            }
        }
    }
    for id in g.live_ids() {
        let s = g.mark(id, slot);
        if s.is_transient() {
            if let Some(MarkParent::Vertex(p)) = s.mt_par {
                *owed.entry(MarkParent::Vertex(p)).or_default() += 1;
            } else if let Some(par @ (MarkParent::RootPar | MarkParent::TaskRootPar)) = s.mt_par {
                *owed.entry(par).or_default() += 1;
            }
        }
    }

    for id in g.live_ids() {
        let s = g.mark(id, slot);
        // Invariant 3.
        let expected = owed
            .get(&MarkParent::Vertex(id))
            .copied()
            .unwrap_or_default();
        if s.mt_cnt != expected {
            return Err(format!(
                "invariant 3 violated at {id} ({slot:?}): mt-cnt = {} but {} unreturned marks",
                s.mt_cnt, expected
            ));
        }
        // Invariants 1 and 2.
        if s.is_transient() || s.is_marked() {
            for c in children_of(g, slot, id) {
                let cs = g.mark(c, slot);
                if cs.is_unmarked() {
                    if exempt(id, c) {
                        continue;
                    }
                    if s.is_marked() {
                        return Err(format!(
                            "invariant 2 violated: marked {id} points to unmarked {c} ({slot:?})"
                        ));
                    }
                    if pending_mark_on.get(&c).copied().unwrap_or_default() == 0 {
                        return Err(format!(
                            "invariant 1 violated: transient {id} has unmarked child {c} \
                             with no pending mark ({slot:?})"
                        ));
                    }
                }
            }
        }
    }

    // The virtual extra root's own mt-cnt (troot for M_T, the orphan-mark
    // absorber for the R process).
    let expected = owed
        .get(&MarkParent::TaskRootPar)
        .copied()
        .unwrap_or_default();
    match slot {
        Slot::T if state.t_active && state.troot_outstanding != expected => {
            return Err(format!(
                "troot outstanding = {} but {} unreturned marks hang on it",
                state.troot_outstanding, expected
            ));
        }
        Slot::R if state.r_mode.is_some() && state.r_extra_outstanding() != expected => {
            return Err(format!(
                "R extra-root outstanding = {} but {} unreturned marks hang on it",
                state.r_extra_outstanding(),
                expected
            ));
        }
        _ => {}
    }
    Ok(())
}

/// After a completed `mark2` pass on a quiescent graph, checks that
/// priorities are *closed*: every marked vertex's children carry at least
/// `min(prior(v), request-type(c, v))`. Only meaningful when no request
/// kinds changed during the pass.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn check_priority_closure(g: &GraphStore) -> Result<(), String> {
    for id in g.live_ids() {
        let s = g.mark(id, Slot::R);
        if !s.is_marked() {
            continue;
        }
        for (c, kind) in g.vertex(id).r_children_kinds() {
            let need = s.prior.min(dgr_graph::Priority::of_request(kind));
            let cs = g.mark(c, Slot::R);
            if cs.is_unmarked() || cs.prior < need {
                return Err(format!(
                    "priority not closed: {id}@{:?} child {c}@{:?}, needs ≥ {need:?}",
                    s.prior, cs.prior
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::handle_mark;
    use crate::state::RMode;
    use dgr_graph::{NodeLabel, Priority};

    /// Run mark1 step by step, checking invariants after every event.
    #[test]
    fn invariants_hold_throughout_mark1() {
        let mut g = GraphStore::with_capacity(16);
        // Small diamond with a cycle: root → a, b; a → c; b → c; c → root.
        let root = g.alloc(NodeLabel::If).unwrap();
        let a = g.alloc(NodeLabel::If).unwrap();
        let b = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::If).unwrap();
        g.connect(root, a);
        g.connect(root, b);
        g.connect(a, c);
        g.connect(b, c);
        g.connect(c, root);
        g.set_root(root);

        let mut state = MarkState::new();
        state.begin_r(RMode::Simple);
        let mut queue = vec![MarkMsg::Mark1 {
            v: root,
            par: MarkParent::RootPar,
        }];
        check_invariants(&g, Slot::R, &queue, &state).unwrap();
        while let Some(m) = queue.pop() {
            // LIFO order for variety.

            let mut buf = Vec::new();
            handle_mark(&mut state, &mut g, m, &mut |m| buf.push(m));
            queue.extend(buf);
            check_invariants(&g, Slot::R, &queue, &state).unwrap();
        }
        assert!(state.r_done);
    }

    #[test]
    fn invariants_hold_throughout_mark2_with_remarking() {
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::If).unwrap();
        let d = g.alloc(NodeLabel::If).unwrap();
        let below = g.alloc(NodeLabel::lit_int(0)).unwrap();
        let mid = g.alloc(NodeLabel::If).unwrap();
        g.connect(root, d);
        g.vertex_mut(root)
            .set_request_kind(0, Some(dgr_graph::RequestKind::Eager));
        g.connect(root, mid);
        g.vertex_mut(root)
            .set_request_kind(1, Some(dgr_graph::RequestKind::Vital));
        g.connect(mid, d);
        g.vertex_mut(mid)
            .set_request_kind(0, Some(dgr_graph::RequestKind::Vital));
        g.connect(d, below);
        g.vertex_mut(d)
            .set_request_kind(0, Some(dgr_graph::RequestKind::Vital));
        g.set_root(root);

        let mut state = MarkState::new();
        state.begin_r(RMode::Priority);
        // FIFO so the eager path reaches d first, forcing a re-mark.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(MarkMsg::Mark2 {
            v: root,
            par: MarkParent::RootPar,
            prior: Priority::Vital,
        });
        while let Some(m) = queue.pop_front() {
            let mut buf = Vec::new();
            handle_mark(&mut state, &mut g, m, &mut |m| buf.push(m));
            queue.extend(buf);
            let pending: Vec<MarkMsg> = queue.iter().copied().collect();
            check_invariants(&g, Slot::R, &pending, &state).unwrap();
        }
        assert!(state.r_done);
        check_priority_closure(&g).unwrap();
    }

    #[test]
    fn invariant_3_detects_corrupt_count() {
        let mut g = GraphStore::with_capacity(2);
        let v = g.alloc(NodeLabel::If).unwrap();
        g.mark_mut(v, Slot::R).mt_cnt = 5;
        let state = MarkState::new();
        let err = check_invariants(&g, Slot::R, &[], &state).unwrap_err();
        assert!(err.contains("invariant 3"));
    }

    #[test]
    fn invariant_2_detects_marked_to_unmarked() {
        let mut g = GraphStore::with_capacity(2);
        let v = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(0)).unwrap();
        g.connect(v, c);
        g.mark_mut(v, Slot::R).color = dgr_graph::Color::Marked;
        let state = MarkState::new();
        let err = check_invariants(&g, Slot::R, &[], &state).unwrap_err();
        assert!(err.contains("invariant 2"));
    }

    #[test]
    fn exempt_edges_skip_invariants_1_and_2() {
        // A marked vertex pointing at an unmarked child is a violation —
        // unless the caller vouches for the arc (M_T snapshot semantics).
        let mut g = GraphStore::with_capacity(2);
        let v = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(0)).unwrap();
        g.connect(v, c);
        g.mark_mut(v, Slot::R).color = dgr_graph::Color::Marked;
        let state = MarkState::new();
        assert!(check_invariants(&g, Slot::R, &[], &state).is_err());
        check_invariants_where(&g, Slot::R, &[], &state, |p, ch| p == v && ch == c).unwrap();
    }

    #[test]
    fn invariant_1_detects_missing_mark() {
        let mut g = GraphStore::with_capacity(2);
        let v = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(0)).unwrap();
        g.connect(v, c);
        g.mark_mut(v, Slot::R).color = dgr_graph::Color::Transient;
        g.mark_mut(v, Slot::R).mt_par = Some(MarkParent::RootPar);
        // mt-cnt says one outstanding mark, but no pending message exists.
        g.mark_mut(v, Slot::R).mt_cnt = 1;
        let state = MarkState::new();
        let err = check_invariants(&g, Slot::R, &[], &state).unwrap_err();
        // Both invariant 1 and 3 are violated; either report is correct.
        assert!(err.contains("invariant"));
    }

    #[test]
    fn priority_closure_detects_stale_child() {
        let mut g = GraphStore::with_capacity(2);
        let v = g.alloc(NodeLabel::If).unwrap();
        let c = g.alloc(NodeLabel::lit_int(0)).unwrap();
        g.connect(v, c);
        g.vertex_mut(v)
            .set_request_kind(0, Some(dgr_graph::RequestKind::Vital));
        g.mark_mut(v, Slot::R).color = dgr_graph::Color::Marked;
        g.mark_mut(v, Slot::R).prior = Priority::Vital;
        g.mark_mut(c, Slot::R).color = dgr_graph::Color::Marked;
        g.mark_mut(c, Slot::R).prior = Priority::Reserve;
        assert!(check_priority_closure(&g).is_err());
    }
}
