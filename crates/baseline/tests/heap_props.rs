//! Property tests for heap-byte accounting against a shadow ledger.
//!
//! The tracker's contract, checked against an independently-maintained
//! shadow over random alloc/free/reweight/episode traffic:
//!
//! * the live clock is exactly `alloc_bytes − freed_bytes` as summed by
//!   the shadow (the tracker never drifts from the ledger it meters);
//! * the peak waterline equals the maximum live level the shadow saw
//!   since the last `begin_episode` (monotone within an episode,
//!   reset to the live level at each episode boundary);
//! * every free in this drive targets a stamped vertex, so every freed
//!   byte must be exact;
//! * cycle ledgers window the traffic: the per-window sums re-add to
//!   the running totals.
//!
//! The same drive runs in both feature states — CI executes this file
//! with and without `telemetry`; the default build must stay silent and
//! zero-sized.

use std::collections::BTreeMap;

use dgr_telemetry::{CycleHeap, HeapTracker, TriggerCause};
use proptest::prelude::*;

/// What the tracker *should* report, maintained independently.
#[derive(Debug, Default, Clone)]
struct Shadow {
    /// Vertex index → (owning PE, live byte weight). The PE is fixed at
    /// allocation, as the system's partition map fixes it in practice.
    live_set: BTreeMap<usize, (usize, u64)>,
    live: u64,
    /// Max live since the last episode boundary.
    peak: u64,
    alloc_bytes: u64,
    freed_bytes: u64,
    allocs: u64,
    frees: u64,
    episodes: u64,
    cycles: Vec<CycleHeap>,
}

/// Drives `ops` pseudo-random heap operations (xorshift64 from `seed`)
/// through a fresh tracker and the shadow in lockstep. Every free hits
/// a stamped vertex; reweights only touch live vertices. Returns both
/// plus the per-op `(tracker live, tracker peak)` trace for the
/// feature-on equality check.
fn drive(ops: usize, seed: u64, pes: usize) -> (HeapTracker, Shadow, Vec<(u64, u64)>) {
    let mut t = HeapTracker::new(pes);
    let mut sh = Shadow::default();
    let mut rng = seed | 1;
    let mut next_idx = 0usize;
    let mut trace = Vec::with_capacity(ops);
    let mut cycle = 0u64;
    for _ in 0..ops {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let pe = (rng >> 8) as usize % pes;
        let bytes = 8 + (rng >> 16) % 120;
        match rng % 10 {
            // Alloc dominates so the live set keeps material in it.
            0..=4 => {
                let idx = next_idx;
                next_idx += 1;
                t.alloc(pe, idx, bytes);
                sh.live_set.insert(idx, (pe, bytes));
                sh.live += bytes;
                sh.peak = sh.peak.max(sh.live);
                sh.alloc_bytes += bytes;
                sh.allocs += 1;
            }
            5..=6 => {
                if let Some((&idx, &(pe, w))) = sh.live_set.iter().next() {
                    t.free(pe, idx, w);
                    sh.live_set.remove(&idx);
                    sh.live -= w;
                    sh.freed_bytes += w;
                    sh.frees += 1;
                }
            }
            // Grow-only reweights keep the `live = alloc − freed`
            // identity checkable (a shrink debits live without
            // crediting freed bytes; the unit tests pin that case).
            7 => {
                if let Some((&idx, &(pe, w))) = sh.live_set.iter().last() {
                    let new = w + bytes % 64;
                    t.reweight(pe, idx, w, new);
                    sh.live_set.insert(idx, (pe, new));
                    sh.live += new - w;
                    sh.peak = sh.peak.max(sh.live);
                    sh.alloc_bytes += new - w;
                }
            }
            8 => {
                t.record_trigger(if rng & 1 == 0 {
                    TriggerCause::Period
                } else {
                    TriggerCause::HeapBytes
                });
                cycle += 1;
                sh.cycles.push(t.close_cycle(cycle));
            }
            _ => {
                t.begin_episode();
                sh.peak = sh.live;
                sh.episodes += 1;
            }
        }
        trace.push((t.live_bytes(), t.peak_bytes()));
    }
    (t, sh, trace)
}

#[cfg(feature = "telemetry")]
mod with_feature {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Op by op the tracker's clocks equal the shadow's, and the
        /// final snapshot reproduces the ledger: live = alloc − freed,
        /// peak = max live since the episode boundary, every freed
        /// byte exact, per-PE clocks summing to the total.
        #[test]
        fn clocks_match_the_shadow_ledger(
            ops in 20usize..200,
            seed in 0u64..1024,
            pes in 1usize..5,
        ) {
            let (t, sh, trace) = drive(ops, seed, pes);
            prop_assert!(t.enabled());
            let (live_end, peak_end) = *trace.last().expect("ops >= 20");
            prop_assert_eq!(live_end, sh.live, "live clock drifted");
            prop_assert_eq!(peak_end, sh.peak, "waterline drifted");
            let s = t.snapshot();
            prop_assert_eq!(s.live, sh.alloc_bytes - sh.freed_bytes,
                "live is exactly the alloc/free ledger difference");
            prop_assert_eq!(s.alloc_bytes, sh.alloc_bytes);
            prop_assert_eq!(s.freed_bytes, sh.freed_bytes);
            prop_assert_eq!((s.allocs, s.frees), (sh.allocs, sh.frees));
            prop_assert_eq!(s.exact_bytes, sh.freed_bytes,
                "every free in this drive hits a stamped vertex");
            prop_assert_eq!(s.exact_frees, sh.frees);
            prop_assert!((s.exact_fraction() - 1.0).abs() < 1e-12);
            prop_assert!(s.peak >= s.live, "peak never dips below live");
            prop_assert_eq!(
                s.per_pe.iter().map(|p| p.live).sum::<u64>(), s.live,
                "per-PE clocks sum to the total"
            );
            prop_assert_eq!(s.cycles, sh.cycles.len() as u64);
            prop_assert_eq!(s.trigger_period + s.trigger_heap, s.cycles,
                "every closed cycle carries exactly one recorded cause");
        }

        /// The waterline is monotone between episode boundaries: over
        /// any boundary-free stretch of the trace, peak never falls and
        /// always dominates live.
        #[test]
        fn peak_is_monotone_within_an_episode(
            ops in 20usize..200,
            seed in 0u64..1024,
        ) {
            let (_, _, trace) = drive(ops, seed, 2);
            let mut prev_peak = 0u64;
            for &(live, peak) in &trace {
                prop_assert!(peak >= live, "peak {} below live {}", peak, live);
                // An episode reset is the only way peak can fall, and it
                // falls exactly to the live level.
                if peak < prev_peak {
                    prop_assert_eq!(peak, live, "a falling peak is a reset to live");
                }
                prev_peak = peak;
            }
        }

        /// Cycle windows partition the traffic: windowed sums re-add to
        /// the running totals (plus the still-open window's remainder).
        #[test]
        fn cycle_ledgers_window_the_traffic(
            ops in 20usize..200,
            seed in 0u64..1024,
        ) {
            let (t, sh, _) = drive(ops, seed, 3);
            let s = t.snapshot();
            let windowed: u64 = sh.cycles.iter().map(|c| c.alloc_bytes).sum();
            let freed_windowed: u64 = sh.cycles.iter().map(|c| c.freed_bytes).sum();
            prop_assert!(windowed <= s.alloc_bytes);
            prop_assert!(freed_windowed <= s.freed_bytes);
            for (i, c) in sh.cycles.iter().enumerate() {
                prop_assert_eq!(c.cycle, i as u64 + 1, "cycles close in order");
                prop_assert!(c.peak >= c.live_end, "window peak dominates its close");
                prop_assert_eq!(c.exact_bytes, c.freed_bytes,
                    "window exactness matches the all-stamped drive");
            }
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod without_feature {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The zero-sized no-op tracker records nothing: the same drive
        /// that fills the ledgers under the feature returns defaults.
        #[test]
        fn the_noop_tracker_stays_empty(
            ops in 20usize..200,
            seed in 0u64..1024,
            pes in 1usize..5,
        ) {
            let (t, sh, trace) = drive(ops, seed, pes);
            prop_assert!(!t.enabled());
            prop_assert_eq!(std::mem::size_of::<HeapTracker>(), 0);
            prop_assert!(sh.alloc_bytes > 0, "the drive itself did allocate");
            for &(live, peak) in &trace {
                prop_assert_eq!(live, 0);
                prop_assert_eq!(peak, 0);
            }
            prop_assert!(t.snapshot().is_empty());
            for c in &sh.cycles {
                prop_assert_eq!(*c, CycleHeap::default());
            }
        }
    }
}
