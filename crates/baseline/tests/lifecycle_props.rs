//! Property tests for lifecycle exactness against the graph oracle.
//!
//! The tracker's contract, checked against an independently-maintained
//! shadow ledger over randomly evolving graphs:
//!
//! * every reclaimed vertex's reclaim cycle is ≥ its unreachable
//!   (first-census) cycle, and its latency is exactly the difference;
//! * the per-cycle float count equals the stamped-but-unreclaimed set —
//!   cumulative distinct garbage minus cumulative reclaims;
//! * per-cycle garbage/reclaim totals match the oracle's garbage set
//!   (`oracle::garbage` is the DetSim ground truth the whole repo
//!   verifies marking against).
//!
//! The same drive runs in both feature states — CI executes this file
//! with and without `telemetry`; the default build must stay silent.

use std::collections::BTreeMap;

use dgr_graph::{oracle, GraphStore, VertexId};
use dgr_telemetry::{CycleLifecycle, LifecycleTracker};
use dgr_workloads::graphs::random_digraph;
use proptest::prelude::*;

/// What the tracker *should* have recorded for one cycle, maintained
/// independently from the oracle's garbage sets.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct ShadowCycle {
    garbage: u64,
    reclaimed: u64,
    latency_sum: u64,
    float: u64,
}

/// Deterministically severs up to `count` outgoing arcs from random
/// live vertices (xorshift64), creating garbage without ever
/// resurrecting anything — so a stamped vertex stays garbage until
/// reclaimed and the resurrection sweep never fires.
fn sever(g: &mut GraphStore, rng: &mut u64, count: usize) {
    let ids: Vec<VertexId> = g.live_ids().collect();
    if ids.is_empty() {
        return;
    }
    for _ in 0..count {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let v = ids[(*rng as usize) % ids.len()];
        let Some(&t) = g.vertex(v).args().first() else {
            continue;
        };
        g.disconnect(v, t);
    }
}

/// Evolves a random digraph for `cycles` cycles, censusing the oracle's
/// garbage set every cycle and reclaiming it every `reclaim_every`-th,
/// with the tracker and the shadow ledger fed identically. Returns the
/// tracker, its per-cycle ledgers, and the shadow expectations.
fn drive(
    n: usize,
    seed: u64,
    cycles: u64,
    reclaim_every: u64,
) -> (LifecycleTracker, Vec<CycleLifecycle>, Vec<ShadowCycle>) {
    let mut g = random_digraph(n, 2.0, seed);
    let mut lc = LifecycleTracker::new();
    let mut rng = seed | 1;
    let mut first_seen: BTreeMap<usize, u64> = BTreeMap::new();
    let mut ledgers = Vec::new();
    let mut shadow = Vec::new();
    for c in 0..cycles {
        sever(&mut g, &mut rng, 4);
        let reach = oracle::reachable_r(&g);
        let garbage = oracle::garbage(&g, &reach);
        lc.begin_cycle(c);
        let mut sc = ShadowCycle {
            garbage: garbage.len() as u64,
            ..Default::default()
        };
        for w in garbage.iter() {
            lc.garbage_vertex(w.index());
            first_seen.entry(w.index()).or_insert(c);
        }
        if c % reclaim_every == reclaim_every - 1 {
            for w in garbage.iter() {
                let born = first_seen.remove(&w.index()).expect("censused this cycle");
                assert!(c >= born, "reclaim cycle precedes the unreachable cycle");
                sc.latency_sum += c - born;
                sc.reclaimed += 1;
                g.free(w);
                lc.reclaim_vertex(w.index());
            }
        }
        sc.float = first_seen.len() as u64;
        ledgers.push(lc.end_cycle());
        shadow.push(sc);
    }
    (lc, ledgers, shadow)
}

#[cfg(feature = "telemetry")]
mod with_feature {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Cycle by cycle, the tracker's ledger equals the shadow built
        /// from the oracle's garbage sets: census totals, reclaim
        /// totals, exact latencies (reclaim − first-census cycle), and
        /// the float count (distinct garbage − reclaims so far).
        #[test]
        fn ledgers_match_the_oracle_shadow(
            n in 30usize..120,
            seed in 0u64..1024,
            cycles in 4u64..10,
            reclaim_every in 1u64..4,
        ) {
            let (lc, ledgers, shadow) = drive(n, seed, cycles, reclaim_every);
            let mut total_latency = 0u64;
            let mut total_reclaimed = 0u64;
            for (c, (led, sc)) in ledgers.iter().zip(&shadow).enumerate() {
                prop_assert_eq!(led.cycle, c as u64);
                prop_assert_eq!(led.garbage, sc.garbage, "cycle {}: census", c);
                prop_assert_eq!(led.reclaimed, sc.reclaimed, "cycle {}: reclaims", c);
                prop_assert_eq!(
                    led.exact, led.reclaimed,
                    "cycle {}: every reclaim was censused first, so every \
                     latency is exact", c
                );
                prop_assert_eq!(led.latency_sum, sc.latency_sum, "cycle {}: latency", c);
                prop_assert_eq!(led.float, sc.float, "cycle {}: float", c);
                total_latency += sc.latency_sum;
                total_reclaimed += sc.reclaimed;
            }
            let s = lc.snapshot();
            prop_assert_eq!(s.cycles, cycles);
            prop_assert_eq!(s.reclaimed, total_reclaimed);
            prop_assert_eq!(s.exact, total_reclaimed);
            prop_assert_eq!(s.latency_sum, total_latency);
            prop_assert_eq!(s.float_now, shadow.last().expect("cycles >= 1").float);
            prop_assert_eq!(
                s.latency.iter().sum::<u64>(), s.exact,
                "every exact latency landed in exactly one bucket"
            );
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod without_feature {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The zero-sized no-op tracker records nothing: the same drive
        /// that fills the ledgers under the feature returns defaults.
        #[test]
        fn the_noop_tracker_stays_empty(
            n in 30usize..120,
            seed in 0u64..1024,
            cycles in 4u64..10,
            reclaim_every in 1u64..4,
        ) {
            let (lc, ledgers, _) = drive(n, seed, cycles, reclaim_every);
            prop_assert!(!lc.enabled());
            for led in &ledgers {
                prop_assert_eq!(*led, CycleLifecycle::default());
            }
            prop_assert!(lc.snapshot().is_empty());
            prop_assert!(lc.worst_floaters(4).is_empty());
        }
    }
}
