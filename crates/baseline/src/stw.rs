//! Stop-the-world tracing collection.
//!
//! The conventional alternative to the paper's concurrent marking: halt
//! every PE, trace the graph sequentially, reclaim, resume. Exact, but the
//! entire trace is a *pause* — no reduction task executes while it runs.
//! The T1 experiment compares this pause against the concurrent
//! collector's cycles, during which reduction keeps executing
//! (`CycleReport::reduction_events_during_marking > 0`).

use dgr_graph::{oracle, GraphStore, Requester};
use serde::{Deserialize, Serialize};

/// What one stop-the-world collection did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StwReport {
    /// Vertices traced (≈ work done while the world is stopped; grows with
    /// the live set).
    pub traced: usize,
    /// Vertices reclaimed.
    pub reclaimed: usize,
    /// Total pause "work units": trace plus the sweep over all slots.
    pub pause_units: usize,
}

/// Halts the world (there is nothing running — the caller guarantees
/// that), traces from the root, and reclaims everything else.
pub fn collect_stw(g: &mut GraphStore) -> StwReport {
    let reach = oracle::reachable_r(g);
    let garbage = oracle::garbage(g, &reach);
    // Purge reclaimed requesters, then free (same hygiene as the
    // concurrent restructuring phase).
    let live: Vec<_> = g.live_ids().filter(|&v| !garbage.contains(v)).collect();
    for v in live {
        g.vertex_mut(v).retain_requesters(|r| match r {
            Requester::Vertex(x) => !garbage.contains(x),
            Requester::External => true,
        });
    }
    for w in garbage.iter() {
        g.free(w);
    }
    StwReport {
        traced: reach.len(),
        reclaimed: garbage.len(),
        pause_units: reach.len() + g.capacity(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::NodeLabel;

    #[test]
    fn collects_exactly_the_unreachable() {
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::If).unwrap();
        let live = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let dead1 = g.alloc(NodeLabel::lit_int(2)).unwrap();
        let dead2 = g.alloc(NodeLabel::lit_int(3)).unwrap();
        g.connect(root, live);
        g.connect(dead1, dead2);
        g.connect(dead2, dead1); // cyclic garbage: no problem for tracing
        g.set_root(root);

        let r = collect_stw(&mut g);
        assert_eq!(r.traced, 2);
        assert_eq!(r.reclaimed, 2);
        assert!(g.is_free(dead1) && g.is_free(dead2));
        assert!(!g.is_free(root) && !g.is_free(live));
    }

    #[test]
    fn pause_grows_with_live_set() {
        let mut small = dgr_workloads::graphs::binary_tree(4);
        let mut big = dgr_workloads::graphs::binary_tree(8);
        let rs = collect_stw(&mut small);
        let rb = collect_stw(&mut big);
        assert!(rb.pause_units > 10 * rs.pause_units / 2);
    }

    #[test]
    fn idempotent() {
        let mut g = dgr_workloads::graphs::binary_tree(4);
        let first = collect_stw(&mut g);
        let second = collect_stw(&mut g);
        assert_eq!(first.reclaimed, 0);
        assert_eq!(second.traced, first.traced);
    }
}
