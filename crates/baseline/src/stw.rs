//! Stop-the-world tracing collection.
//!
//! The conventional alternative to the paper's concurrent marking: halt
//! every PE, trace the graph sequentially, reclaim, resume. Exact, but the
//! entire trace is a *pause* — no reduction task executes while it runs.
//! The T1 experiment compares this pause against the concurrent
//! collector's cycles, during which reduction keeps executing
//! (`CycleReport::reduction_events_during_marking > 0`).

use dgr_graph::{oracle, GraphStore, Requester};
use dgr_telemetry::LifecycleTracker;
use serde::{Deserialize, Serialize};

/// What one stop-the-world collection did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StwReport {
    /// Vertices traced (≈ work done while the world is stopped; grows with
    /// the live set).
    pub traced: usize,
    /// Vertices reclaimed.
    pub reclaimed: usize,
    /// Total pause "work units": trace plus the sweep over all slots.
    pub pause_units: usize,
}

/// Halts the world (there is nothing running — the caller guarantees
/// that), traces from the root, and reclaims everything else.
pub fn collect_stw(g: &mut GraphStore) -> StwReport {
    let mut lc = LifecycleTracker::new();
    lc.begin_cycle(0);
    let r = collect_stw_observed(g, &mut lc);
    lc.end_cycle();
    r
}

/// [`collect_stw`] with the vertex lifecycle observed through `lc`.
///
/// The caller owns the cycle bracket: call `lc.begin_cycle` before and
/// `lc.end_cycle` after, so that a sequence of collections over a mutating
/// graph shares one ledger and latencies span collections. Every garbage
/// vertex is censused from the oracle set this collector already computes
/// and stamped reclaimed next to its `free` — STW never floats garbage
/// within a collection, but garbage that *arose* since the previous
/// collection carries its true cross-collection latency. STW exchanges no
/// messages, so the meter records zeros (and a zero bound).
pub fn collect_stw_observed(g: &mut GraphStore, lc: &mut LifecycleTracker) -> StwReport {
    let reach = oracle::reachable_r(g);
    let garbage = oracle::garbage(g, &reach);
    if lc.enabled() {
        for w in garbage.iter() {
            lc.garbage_vertex(w.index());
        }
    }
    // Purge reclaimed requesters, then free (same hygiene as the
    // concurrent restructuring phase).
    let live: Vec<_> = g.live_ids().filter(|&v| !garbage.contains(v)).collect();
    for v in live {
        g.vertex_mut(v).retain_requesters(|r| match r {
            Requester::Vertex(x) => !garbage.contains(x),
            Requester::External => true,
        });
    }
    for w in garbage.iter() {
        g.free(w);
        lc.reclaim_vertex(w.index());
    }
    lc.meter_msgs(0, 0, 0);
    StwReport {
        traced: reach.len(),
        reclaimed: garbage.len(),
        pause_units: reach.len() + g.capacity(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::NodeLabel;

    #[test]
    fn collects_exactly_the_unreachable() {
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::If).unwrap();
        let live = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let dead1 = g.alloc(NodeLabel::lit_int(2)).unwrap();
        let dead2 = g.alloc(NodeLabel::lit_int(3)).unwrap();
        g.connect(root, live);
        g.connect(dead1, dead2);
        g.connect(dead2, dead1); // cyclic garbage: no problem for tracing
        g.set_root(root);

        let r = collect_stw(&mut g);
        assert_eq!(r.traced, 2);
        assert_eq!(r.reclaimed, 2);
        assert!(g.is_free(dead1) && g.is_free(dead2));
        assert!(!g.is_free(root) && !g.is_free(live));
    }

    #[test]
    fn pause_grows_with_live_set() {
        let mut small = dgr_workloads::graphs::binary_tree(4);
        let mut big = dgr_workloads::graphs::binary_tree(8);
        let rs = collect_stw(&mut small);
        let rb = collect_stw(&mut big);
        assert!(rb.pause_units > 10 * rs.pause_units / 2);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn observed_stw_stamps_every_reclaim_exactly() {
        use dgr_workloads::graphs::random_digraph;
        let mut g = random_digraph(128, 2.5, 7);
        let mut lc = LifecycleTracker::new();
        lc.begin_cycle(0);
        let r = collect_stw_observed(&mut g, &mut lc);
        lc.end_cycle();
        let s = lc.snapshot();
        assert!(r.reclaimed > 0, "workload produced no garbage");
        assert_eq!(s.reclaimed, r.reclaimed as u64);
        assert_eq!(s.exact, s.reclaimed, "census precedes every free");
        assert_eq!(s.float_now, 0, "STW leaves nothing floating");
        assert_eq!(s.msgs_mt + s.msgs_mr, 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn observed_stw_latency_spans_collections() {
        use dgr_graph::NodeLabel;
        let mut g = GraphStore::with_capacity(8);
        let root = g.alloc(NodeLabel::If).unwrap();
        let held = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(root, held);
        g.set_root(root);

        let mut lc = LifecycleTracker::new();
        lc.begin_cycle(0);
        collect_stw_observed(&mut g, &mut lc);
        lc.end_cycle();
        g.disconnect(root, held); // becomes garbage between collections
        lc.begin_cycle(3);
        let r = collect_stw_observed(&mut g, &mut lc);
        lc.end_cycle();
        assert_eq!(r.reclaimed, 1);
        let s = lc.snapshot();
        // First censused at cycle 3, reclaimed at cycle 3: latency 0 —
        // cross-collection delay is only visible when an intermediate
        // census sees the vertex floating; that path belongs to GcDriver.
        assert_eq!(s.reclaimed, 1);
        assert_eq!(s.exact, 1);
    }

    #[test]
    fn idempotent() {
        let mut g = dgr_workloads::graphs::binary_tree(4);
        let first = collect_stw(&mut g);
        let second = collect_stw(&mut g);
        assert_eq!(first.reclaimed, 0);
        assert_eq!(second.traced, first.traced);
    }
}
