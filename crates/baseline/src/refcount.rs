//! Distributed reference counting.
//!
//! Each vertex carries a count of incoming references; `connect` and
//! `disconnect` adjust it (in a distributed setting each adjustment is a
//! message — counted here as `count_messages`). When a count reaches zero
//! the vertex is reclaimed and its outgoing references are released
//! transitively. Cycles never reach zero: dropping the last external
//! reference to a cycle strands it — the leak the paper's Section 4 cites
//! as a principal reason to prefer marking.

use dgr_telemetry::LifecycleTracker;
use dgr_workloads::churn::ChurnOp;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Default)]
struct RcNode {
    children: Vec<usize>,
    rc: u32,
    free: bool,
}

/// A reference-counted vertex store.
#[derive(Debug, Default)]
pub struct RcStore {
    nodes: Vec<RcNode>,
    free: Vec<usize>,
    /// Vertices reclaimed so far.
    pub reclaimed: usize,
    /// Count-adjustment messages sent (one per increment/decrement).
    pub count_messages: u64,
    /// Indices reclaimed since the log was last drained (lifecycle
    /// instrumentation; cleared by [`RcStore::drain_reclaim_log`]).
    pub reclaim_log: Vec<usize>,
}

impl RcStore {
    /// Creates a store with `capacity` free vertices.
    pub fn new(capacity: usize) -> Self {
        RcStore {
            nodes: vec![
                RcNode {
                    free: true,
                    ..RcNode::default()
                };
                capacity
            ],
            free: (0..capacity).rev().collect(),
            reclaimed: 0,
            count_messages: 0,
            reclaim_log: Vec::new(),
        }
    }

    /// Takes the indices reclaimed since the last drain.
    pub fn drain_reclaim_log(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.reclaim_log)
    }

    /// Allocates a vertex (count zero until referenced); grows on demand.
    pub fn alloc(&mut self) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = RcNode::default();
            i
        } else {
            self.nodes.push(RcNode::default());
            self.nodes.len() - 1
        }
    }

    /// Adds an arc `a → b`, incrementing `b`'s count.
    pub fn connect(&mut self, a: usize, b: usize) {
        self.nodes[a].children.push(b);
        self.nodes[b].rc += 1;
        self.count_messages += 1;
    }

    /// Pins a vertex (an external/root reference).
    pub fn pin(&mut self, v: usize) {
        self.nodes[v].rc += 1;
        self.count_messages += 1;
    }

    /// Removes one arc `a → b`, decrementing `b`'s count and reclaiming
    /// transitively on zero.
    pub fn disconnect(&mut self, a: usize, b: usize) -> bool {
        let Some(i) = self.nodes[a].children.iter().position(|&c| c == b) else {
            return false;
        };
        self.nodes[a].children.remove(i);
        self.release(b);
        true
    }

    /// Releases one reference to `v`.
    pub fn release(&mut self, v: usize) {
        let mut stack = vec![v];
        while let Some(v) = stack.pop() {
            debug_assert!(self.nodes[v].rc > 0, "release of zero-count node");
            self.nodes[v].rc -= 1;
            self.count_messages += 1;
            if self.nodes[v].rc == 0 && !self.nodes[v].free {
                self.nodes[v].free = true;
                self.free.push(v);
                self.reclaimed += 1;
                self.reclaim_log.push(v);
                let children = std::mem::take(&mut self.nodes[v].children);
                stack.extend(children);
            }
        }
    }

    /// Vertices that are unreachable from `roots` yet not reclaimed — the
    /// leaked cycles. (Computed by tracing, which a real distributed RC
    /// system cannot do; this is the experiment's ground-truth check.)
    pub fn leaked(&self, roots: &[usize]) -> usize {
        self.leaked_ids(roots).len()
    }

    /// The leaked vertices themselves (see [`RcStore::leaked`]).
    pub fn leaked_ids(&self, roots: &[usize]) -> Vec<usize> {
        let mut reach = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = roots.to_vec();
        for &r in roots {
            reach[r] = true;
        }
        while let Some(v) = stack.pop() {
            for &c in &self.nodes[v].children {
                if !reach[c] {
                    reach[c] = true;
                    stack.push(c);
                }
            }
        }
        (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].free && !reach[i])
            .collect()
    }

    /// Live (non-free) vertex count.
    pub fn live(&self) -> usize {
        self.nodes.iter().filter(|n| !n.free).count()
    }
}

/// Result of replaying a churn trace against reference counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RcChurnReport {
    /// Vertices reclaimed by counting.
    pub reclaimed: usize,
    /// Vertices leaked (unreachable but never reclaimed — stranded
    /// cycles).
    pub leaked: usize,
    /// Count-adjustment messages sent.
    pub count_messages: u64,
    /// Live vertices at the end.
    pub live: usize,
}

/// Replays a churn trace against reference counting.
///
/// Kept free of lifecycle hooks (rather than delegating to
/// [`replay_churn_rc_observed`] with a throwaway tracker) so that
/// telemetry-on builds of the T2 experiment never pay the observed
/// variant's per-op ground-truth traces.
pub fn replay_churn_rc(trace: &[ChurnOp]) -> RcChurnReport {
    let mut s = RcStore::new(64);
    let root = s.alloc();
    s.pin(root);
    let mut clusters: Vec<usize> = Vec::new();
    for &op in trace {
        match op {
            ChurnOp::New { size, cyclic } => {
                let size = size.max(1) as usize;
                let ids: Vec<usize> = (0..size).map(|_| s.alloc()).collect();
                for w in ids.windows(2) {
                    s.connect(w[0], w[1]);
                }
                if cyclic && size > 1 {
                    s.connect(ids[size - 1], ids[0]);
                }
                s.connect(root, ids[0]);
                clusters.push(ids[0]);
            }
            ChurnOp::Drop { index } => {
                if clusters.is_empty() {
                    continue;
                }
                let head = clusters.swap_remove(index % clusters.len());
                s.disconnect(root, head);
            }
        }
    }
    RcChurnReport {
        reclaimed: s.reclaimed,
        leaked: s.leaked(&[root]),
        count_messages: s.count_messages,
        live: s.live(),
    }
}

/// [`replay_churn_rc`] with lifecycle accounting: each churn op is one
/// tracker cycle. Reference counting reclaims the instant a count hits
/// zero, so every reclaim carries an exact latency of 0 — while stranded
/// cycles are censused as floating garbage on every subsequent op (the
/// leak *is* permanent float). Count-adjustment messages are metered on
/// the `M_R` (collector-message) meter; no Section 4 bound applies.
pub fn replay_churn_rc_observed(trace: &[ChurnOp], lc: &mut LifecycleTracker) -> RcChurnReport {
    let mut s = RcStore::new(64);
    let root = s.alloc();
    s.pin(root);
    let mut clusters: Vec<usize> = Vec::new();
    let mut msgs_before = 0u64;
    for (cycle, &op) in trace.iter().enumerate() {
        lc.begin_cycle(cycle as u64);
        match op {
            ChurnOp::New { size, cyclic } => {
                let size = size.max(1) as usize;
                let ids: Vec<usize> = (0..size).map(|_| s.alloc()).collect();
                for w in ids.windows(2) {
                    s.connect(w[0], w[1]);
                }
                if cyclic && size > 1 {
                    s.connect(ids[size - 1], ids[0]);
                }
                s.connect(root, ids[0]);
                clusters.push(ids[0]);
            }
            ChurnOp::Drop { index } => {
                // An empty-cluster drop is a no-op, but the cycle still
                // closes below: the census must re-see the floating set
                // every cycle or the sweep would misread it as resurrected.
                if !clusters.is_empty() {
                    let head = clusters.swap_remove(index % clusters.len());
                    s.disconnect(root, head);
                }
            }
        }
        if lc.enabled() {
            // A reclaimed vertex was garbage for exactly this op: stamp
            // and free it in the same cycle (latency 0). The stranded
            // cycles age on every census — RC's float never drains.
            for v in s.drain_reclaim_log() {
                lc.garbage_vertex(v);
                lc.reclaim_vertex(v);
            }
            for v in s.leaked_ids(&[root]) {
                lc.garbage_vertex(v);
            }
        }
        lc.meter_msgs(0, s.count_messages - msgs_before, 0);
        msgs_before = s.count_messages;
        lc.end_cycle();
    }
    RcChurnReport {
        reclaimed: s.reclaimed,
        leaked: s.leaked(&[root]),
        count_messages: s.count_messages,
        live: s.live(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_workloads::churn::churn_trace;

    #[test]
    fn acyclic_chain_reclaimed_on_drop() {
        let mut s = RcStore::new(8);
        let root = s.alloc();
        s.pin(root);
        let a = s.alloc();
        let b = s.alloc();
        s.connect(a, b);
        s.connect(root, a);
        s.disconnect(root, a);
        assert_eq!(s.reclaimed, 2, "a and b cascade");
        assert_eq!(s.leaked(&[root]), 0);
    }

    #[test]
    fn cycle_leaks() {
        let mut s = RcStore::new(8);
        let root = s.alloc();
        s.pin(root);
        let a = s.alloc();
        let b = s.alloc();
        s.connect(a, b);
        s.connect(b, a); // cycle
        s.connect(root, a);
        s.disconnect(root, a);
        assert_eq!(s.reclaimed, 0, "counts never reach zero");
        assert_eq!(s.leaked(&[root]), 2, "both stranded");
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut s = RcStore::new(2);
        let root = s.alloc();
        s.pin(root);
        let a = s.alloc();
        s.connect(root, a);
        s.disconnect(root, a);
        let b = s.alloc();
        assert_eq!(b, a, "slot recycled");
    }

    #[test]
    fn churn_without_cycles_leaks_nothing() {
        let trace = churn_trace(300, 4, 0.0, 0.5, 1);
        let r = replay_churn_rc(&trace);
        assert_eq!(r.leaked, 0);
        assert!(r.reclaimed > 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn observed_rc_reclaims_at_zero_latency_and_floats_leaks() {
        let trace = churn_trace(300, 4, 0.5, 0.5, 1);
        let mut lc = LifecycleTracker::new();
        let r = replay_churn_rc_observed(&trace, &mut lc);
        let s = lc.snapshot();
        assert_eq!(s.reclaimed, r.reclaimed as u64);
        assert_eq!(s.exact, s.reclaimed, "RC latencies are always exact");
        assert_eq!(s.mean_latency(), 0.0, "counting reclaims instantly");
        assert_eq!(s.float_now, r.leaked as u64, "the leak is permanent float");
        assert_eq!(s.msgs_mr, r.count_messages);
        assert!(
            s.float_age.iter().skip(4).any(|&b| b > 0),
            "stranded cycles keep aging"
        );
        assert_eq!(replay_churn_rc(&trace), r, "observed replay is faithful");
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn observed_rc_is_silent_feature_off() {
        let trace = churn_trace(100, 4, 0.5, 0.5, 1);
        let mut lc = LifecycleTracker::new();
        let r = replay_churn_rc_observed(&trace, &mut lc);
        assert!(lc.snapshot().is_empty());
        assert_eq!(replay_churn_rc(&trace), r, "replay identical either way");
    }

    #[test]
    fn churn_leak_scales_with_cyclic_fraction() {
        let trace_lo = churn_trace(300, 4, 0.2, 0.5, 1);
        let trace_hi = churn_trace(300, 4, 0.8, 0.5, 1);
        let lo = replay_churn_rc(&trace_lo);
        let hi = replay_churn_rc(&trace_hi);
        assert!(lo.leaked > 0);
        assert!(
            hi.leaked > lo.leaked,
            "more cycles, more leak: {} vs {}",
            hi.leaked,
            lo.leaked
        );
    }
}
