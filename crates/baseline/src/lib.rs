//! Baseline collectors the paper argues against.
//!
//! * [`refcount`] — distributed **reference counting**, the alternative the
//!   paper says "has particular deficiencies that make it unsuitable": it
//!   cannot reclaim self-referencing structures, and it cannot perform the
//!   tracing needed to identify task types or deadlock. The implementation
//!   here demonstrates the first deficiency quantitatively (T2) and the
//!   second by construction (there is nothing to query).
//! * [`stw`] — a **stop-the-world** tracing collector: exact, but performs
//!   all of its work while the reduction process is halted (T1's
//!   comparison partner for the concurrent collector).
//! * [`noncoop`] — the decentralized marking algorithm run **without
//!   mutator cooperation**, i.e. under the static-graph assumption of the
//!   Chandy–Misra-style algorithms the paper contrasts itself with;
//!   mutation during marking makes it lose live vertices (T-abl).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod noncoop;
pub mod refcount;
pub mod stw;
