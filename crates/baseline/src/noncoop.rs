//! Marking under mutation with cooperation switched off.
//!
//! Chandy–Misra-style distributed graph algorithms assume the graph is
//! static. Running the paper's marking on a mutating graph *without* the
//! cooperating mutator primitives reproduces that assumption — and its
//! failure mode: live vertices end up unmarked and would be reclaimed.
//! The move mutation keeps root-reachability invariant, so every unmarked
//! live vertex at the end is a definite loss.

use dgr_core::driver::{reset_slot, route};
use dgr_core::{handle_mark, MarkMsg, MarkState, RMode};
use dgr_graph::{oracle, GraphStore, MarkParent, PartitionMap, PartitionStrategy, Slot};
use dgr_sim::{DetSim, SchedPolicy};
use dgr_workloads::mutation::MoveMutator;
use serde::{Deserialize, Serialize};

/// Result of one marking-under-mutation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoopReport {
    /// Whether cooperation was enabled.
    pub cooperating: bool,
    /// Mutations applied during the marking pass.
    pub mutations: u64,
    /// Live (root-reachable) vertices at the end of the pass.
    pub live: usize,
    /// Live vertices the pass failed to mark — what a collector using
    /// these marks would wrongly reclaim.
    pub lost_live: usize,
    /// Marking events executed.
    pub mark_events: u64,
}

/// Runs one `mark1` pass over `g` while applying one move mutation every
/// `mutation_period` marking events (`0` = no mutation).
pub fn mark_under_mutation(
    g: &mut GraphStore,
    cooperating: bool,
    mutation_period: u64,
    seed: u64,
) -> CoopReport {
    let root = g.root().expect("marking needs a root");
    reset_slot(g, Slot::R);
    let mut state = MarkState::new();
    state.cooperation_enabled = cooperating;
    state.begin_r(RMode::Simple);

    let partition = PartitionMap::new(4, g.capacity(), PartitionStrategy::Modulo);
    let mut sim: DetSim<MarkMsg> = DetSim::new(4, SchedPolicy::Random { marking_bias: 0.5 }, seed);
    sim.send(route(
        &partition,
        MarkMsg::Mark1 {
            v: root,
            par: MarkParent::RootPar,
        },
    ));

    let mut mutator = MoveMutator::new(seed.wrapping_add(1));
    let mut events = 0u64;
    let mut buf: Vec<MarkMsg> = Vec::new();
    while let Some((_pe, _lane, msg)) = sim.next_event() {
        handle_mark(&mut state, g, msg, &mut |m| buf.push(m));
        events += 1;
        for m in buf.drain(..) {
            sim.send(route(&partition, m));
        }
        if mutation_period > 0 && events.is_multiple_of(mutation_period) {
            let mut coop_buf: Vec<MarkMsg> = Vec::new();
            mutator.step(&mut state, g, &mut |m| coop_buf.push(m));
            for m in coop_buf {
                sim.send(route(&partition, m));
            }
        }
    }
    assert!(state.r_done, "marking drained without termination");

    let reach = oracle::reachable_r(g);
    let lost_live = g
        .live_ids()
        .filter(|&v| reach.contains(v) && !g.mark(v, Slot::R).is_marked())
        .count();
    CoopReport {
        cooperating,
        mutations: mutator.applied,
        live: reach.len(),
        lost_live,
        mark_events: events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_workloads::graphs::binary_tree;

    #[test]
    fn cooperating_loses_nothing() {
        for seed in 0..10 {
            let mut g = binary_tree(8);
            let r = mark_under_mutation(&mut g, true, 1, seed);
            assert!(r.mutations > 0, "seed {seed}: mutations applied");
            assert_eq!(r.lost_live, 0, "seed {seed}");
        }
    }

    #[test]
    fn non_cooperating_loses_live_vertices() {
        // Aggregate over seeds: any single schedule may get lucky, but
        // across ten adversarial runs the static-graph assumption must
        // lose vertices.
        let mut total_lost = 0usize;
        for seed in 0..10 {
            let mut g = binary_tree(8);
            let r = mark_under_mutation(&mut g, false, 1, seed);
            total_lost += r.lost_live;
        }
        assert!(total_lost > 0, "static-graph marking lost no vertices?");
    }

    #[test]
    fn no_mutation_no_difference() {
        let mut g1 = binary_tree(6);
        let mut g2 = binary_tree(6);
        let coop = mark_under_mutation(&mut g1, true, 0, 3);
        let non = mark_under_mutation(&mut g2, false, 0, 3);
        assert_eq!(coop.lost_live, 0);
        assert_eq!(non.lost_live, 0, "a static graph needs no cooperation");
    }
}
