//! Marking under mutation with cooperation switched off.
//!
//! Chandy–Misra-style distributed graph algorithms assume the graph is
//! static. Running the paper's marking on a mutating graph *without* the
//! cooperating mutator primitives reproduces that assumption — and its
//! failure mode: live vertices end up unmarked and would be reclaimed.
//! The move mutation keeps root-reachability invariant, so every unmarked
//! live vertex at the end is a definite loss.

use dgr_core::driver::{reset_slot, route};
use dgr_core::{handle_mark, MarkMsg, MarkState, RMode};
use dgr_graph::{oracle, GraphStore, MarkParent, PartitionMap, PartitionStrategy, Requester, Slot};
use dgr_sim::{DetSim, SchedPolicy};
use dgr_telemetry::LifecycleTracker;
use dgr_workloads::mutation::MoveMutator;
use serde::{Deserialize, Serialize};

/// Result of one marking-under-mutation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoopReport {
    /// Whether cooperation was enabled.
    pub cooperating: bool,
    /// Mutations applied during the marking pass.
    pub mutations: u64,
    /// Live (root-reachable) vertices at the end of the pass.
    pub live: usize,
    /// Live vertices the pass failed to mark — what a collector using
    /// these marks would wrongly reclaim.
    pub lost_live: usize,
    /// Marking events executed.
    pub mark_events: u64,
}

/// Runs one `mark1` pass over `g` while applying one move mutation every
/// `mutation_period` marking events (`0` = no mutation).
pub fn mark_under_mutation(
    g: &mut GraphStore,
    cooperating: bool,
    mutation_period: u64,
    seed: u64,
) -> CoopReport {
    let root = g.root().expect("marking needs a root");
    reset_slot(g, Slot::R);
    let mut state = MarkState::new();
    state.cooperation_enabled = cooperating;
    state.begin_r(RMode::Simple);

    let partition = PartitionMap::new(4, g.capacity(), PartitionStrategy::Modulo);
    let mut sim: DetSim<MarkMsg> = DetSim::new(4, SchedPolicy::Random { marking_bias: 0.5 }, seed);
    sim.send(route(
        &partition,
        MarkMsg::Mark1 {
            v: root,
            par: MarkParent::RootPar,
        },
    ));

    let mut mutator = MoveMutator::new(seed.wrapping_add(1));
    let mut events = 0u64;
    let mut buf: Vec<MarkMsg> = Vec::new();
    while let Some((_pe, _lane, msg)) = sim.next_event() {
        handle_mark(&mut state, g, msg, &mut |m| buf.push(m));
        events += 1;
        for m in buf.drain(..) {
            sim.send(route(&partition, m));
        }
        if mutation_period > 0 && events.is_multiple_of(mutation_period) {
            let mut coop_buf: Vec<MarkMsg> = Vec::new();
            mutator.step(&mut state, g, &mut |m| coop_buf.push(m));
            for m in coop_buf {
                sim.send(route(&partition, m));
            }
        }
    }
    assert!(state.r_done, "marking drained without termination");

    let reach = oracle::reachable_r(g);
    let lost_live = g
        .live_ids()
        .filter(|&v| reach.contains(v) && !g.mark(v, Slot::R).is_marked())
        .count();
    CoopReport {
        cooperating,
        mutations: mutator.applied,
        live: reach.len(),
        lost_live,
        mark_events: events,
    }
}

/// [`mark_under_mutation`] followed by reclamation, with the vertex
/// lifecycle observed through `lc`.
///
/// The caller owns the cycle bracket (`begin_cycle`/`end_cycle`). After
/// the pass drains, every oracle-garbage vertex is censused and freed —
/// garbage is never root-reachable, so the pass never marks it and its
/// marks agree with the oracle on this set regardless of cooperation.
/// (What non-cooperation corrupts is the *live* side: `lost_live` counts
/// live vertices the marks would additionally, wrongly, reclaim; the
/// observatory does not free those, or repeated passes would run on a
/// corrupted graph.) Every marking event is charged to the M_R meter
/// against the paper's two-messages-per-marked-vertex bound.
pub fn mark_under_mutation_observed(
    g: &mut GraphStore,
    cooperating: bool,
    mutation_period: u64,
    seed: u64,
    lc: &mut LifecycleTracker,
) -> CoopReport {
    let r = mark_under_mutation(g, cooperating, mutation_period, seed);
    let reach = oracle::reachable_r(g);
    let garbage = oracle::garbage(g, &reach);
    if lc.enabled() {
        for w in garbage.iter() {
            lc.garbage_vertex(w.index());
        }
    }
    // Same requester hygiene as the concurrent restructuring phase.
    let live: Vec<_> = g.live_ids().filter(|&v| !garbage.contains(v)).collect();
    for v in live {
        g.vertex_mut(v).retain_requesters(|req| match req {
            Requester::Vertex(x) => !garbage.contains(x),
            Requester::External => true,
        });
    }
    let marked = g
        .live_ids()
        .filter(|&v| g.mark(v, Slot::R).is_marked())
        .count() as u64;
    for w in garbage.iter() {
        g.free(w);
        lc.reclaim_vertex(w.index());
    }
    lc.meter_msgs(0, r.mark_events, 2 * marked);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_workloads::graphs::binary_tree;

    #[test]
    fn cooperating_loses_nothing() {
        for seed in 0..10 {
            let mut g = binary_tree(8);
            let r = mark_under_mutation(&mut g, true, 1, seed);
            assert!(r.mutations > 0, "seed {seed}: mutations applied");
            assert_eq!(r.lost_live, 0, "seed {seed}");
        }
    }

    #[test]
    fn non_cooperating_loses_live_vertices() {
        // Aggregate over seeds: any single schedule may get lucky, but
        // across ten adversarial runs the static-graph assumption must
        // lose vertices.
        let mut total_lost = 0usize;
        for seed in 0..10 {
            let mut g = binary_tree(8);
            let r = mark_under_mutation(&mut g, false, 1, seed);
            total_lost += r.lost_live;
        }
        assert!(total_lost > 0, "static-graph marking lost no vertices?");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn observed_noncoop_reclaims_true_garbage_and_meters_marking() {
        use dgr_workloads::graphs::random_digraph;
        let mut g = random_digraph(128, 2.5, 11);
        let mut lc = LifecycleTracker::new();
        lc.begin_cycle(0);
        let r = mark_under_mutation_observed(&mut g, false, 8, 11, &mut lc);
        lc.end_cycle();
        let s = lc.snapshot();
        assert!(s.reclaimed > 0, "workload produced no garbage");
        assert_eq!(s.exact, s.reclaimed, "census precedes every free");
        assert_eq!(s.float_now, 0);
        assert_eq!(s.msgs_mr, r.mark_events);
        assert!(s.bound > 0, "bound follows the marked live set");
        // True garbage is never root-reachable, so reclamation leaves
        // exactly the live set — regardless of lost marks.
        let reach = oracle::reachable_r(&g);
        assert_eq!(g.live_ids().count(), reach.len());
    }

    #[test]
    fn no_mutation_no_difference() {
        let mut g1 = binary_tree(6);
        let mut g2 = binary_tree(6);
        let coop = mark_under_mutation(&mut g1, true, 0, 3);
        let non = mark_under_mutation(&mut g2, false, 0, 3);
        assert_eq!(coop.lost_live, 0);
        assert_eq!(non.lost_live, 0, "a static graph needs no cooperation");
    }
}
