//! Registry of supercombinator templates.

use dgr_graph::Template;
use serde::{Deserialize, Serialize};

/// Identifier of a registered template (also the payload of
/// [`Value::Fn`](dgr_graph::Value::Fn)).
pub type TemplateId = u32;

/// The program's supercombinators, shared (read-only) by every PE.
///
/// In the paper's machine each PE holds the program code; templates are
/// immutable once reduction starts, so sharing them without locks is
/// faithful.
///
/// # Example
///
/// ```
/// use dgr_reduction::TemplateStore;
/// use dgr_graph::{NodeLabel, Template, TemplateNode, TemplateRef};
///
/// let mut store = TemplateStore::new();
/// let id = store.register(
///     Template::new("id", 1, vec![TemplateNode::new(
///         NodeLabel::Ind,
///         vec![TemplateRef::Param(0)],
///     )]).unwrap(),
/// );
/// assert_eq!(store.arity(id), 1);
/// assert_eq!(store.get(id).name(), "id");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TemplateStore {
    templates: Vec<Template>,
}

impl TemplateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TemplateStore::default()
    }

    /// Registers a template, returning its id.
    pub fn register(&mut self, tpl: Template) -> TemplateId {
        self.templates.push(tpl);
        (self.templates.len() - 1) as TemplateId
    }

    /// Looks up a template.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`TemplateStore::register`].
    pub fn get(&self, id: TemplateId) -> &Template {
        &self.templates[id as usize]
    }

    /// Fallible lookup.
    pub fn try_get(&self, id: TemplateId) -> Option<&Template> {
        self.templates.get(id as usize)
    }

    /// The arity of a registered template.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn arity(&self, id: TemplateId) -> usize {
        self.get(id).arity()
    }

    /// Number of registered templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Returns `true` if no templates are registered.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Looks a template up by name (linear scan; diagnostics only).
    pub fn find(&self, name: &str) -> Option<TemplateId> {
        self.templates
            .iter()
            .position(|t| t.name() == name)
            .map(|i| i as TemplateId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_graph::{NodeLabel, TemplateNode, TemplateRef};

    fn tpl(name: &str, arity: usize) -> Template {
        let args = (0..arity).map(TemplateRef::Param).collect();
        Template::new(name, arity, vec![TemplateNode::new(NodeLabel::If, args)]).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut s = TemplateStore::new();
        assert!(s.is_empty());
        let a = s.register(tpl("a", 1));
        let b = s.register(tpl("b", 3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.arity(a), 1);
        assert_eq!(s.arity(b), 3);
        assert_eq!(s.find("b"), Some(b));
        assert_eq!(s.find("zzz"), None);
        assert!(s.try_get(99).is_none());
    }
}
