//! A complete reduction system on the deterministic simulator.

use dgr_core::{handle_mark, MarkMsg, MarkState};
use dgr_graph::HeapDelta;
use dgr_graph::{
    GraphStore, PartitionMap, PartitionStrategy, Priority, RequestKind, Requester, Slot,
    TaskEndpoints, Value,
};
use dgr_sim::{DetSim, Envelope, Lane, SchedPolicy};
use dgr_telemetry::{CounterId, HeapSnapshot, HeapTracker, Phase, Registry};

use crate::engine::{handle_red, EngineCtx};
use crate::msg::{RedMsg, SysMsg};
use crate::stats::RedStats;
use crate::templates::TemplateStore;

/// Configuration of a [`System`].
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of processing elements.
    pub num_pes: u16,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Seed for randomized policies.
    pub seed: u64,
    /// Vertex-to-PE assignment.
    pub partition: PartitionStrategy,
    /// Evaluate conditional branches speculatively.
    pub speculation: bool,
    /// Heap growth increment when the free list runs dry (`0` = fixed
    /// heap).
    pub grow_step: usize,
    /// Event budget for [`System::run`].
    pub max_events: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            num_pes: 4,
            policy: SchedPolicy::RoundRobin,
            seed: 0,
            partition: PartitionStrategy::Modulo,
            speculation: false,
            grow_step: 256,
            max_events: 10_000_000,
        }
    }
}

/// How a [`System::run`] ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The root's value was returned to the external observer.
    Value(Value),
    /// Every task drained without producing the root's value — the
    /// computation deadlocked (Section 3.1) or was never demanded.
    Quiescent,
    /// The event budget was exhausted with tasks still pending (a
    /// non-terminating or merely large computation).
    Budget,
}

/// A reduction system: the computation graph, the supercombinators, the
/// marking state, and the simulator carrying both reduction and marking
/// tasks.
///
/// [`System::step`] delivers one task — reduction or marking, whichever
/// the scheduling policy picks — so marking cycles injected by a GC driver
/// execute *concurrently* with reduction, interleaved at task granularity
/// exactly as in the paper.
#[derive(Debug)]
pub struct System {
    /// The computation graph.
    pub graph: GraphStore,
    /// The program's supercombinators.
    pub templates: TemplateStore,
    /// Marking-process state (consulted by the cooperating mutators).
    pub mark_state: MarkState,
    /// Reduction counters.
    pub stats: RedStats,
    /// The root's computed value, once returned to the external observer.
    pub result: Option<Value>,
    config: SystemConfig,
    sim: DetSim<SysMsg>,
    events: u64,
    /// Telemetry registry (the zero-sized no-op unless the `telemetry`
    /// feature is on): per-PE lane-delivery counters and local/remote
    /// send attribution.
    telem: Registry,
    /// The PE whose task is currently dispatching — sends issued while
    /// `Some(pe)` are attributed to that PE as local or remote; sends
    /// with no executing task (external injection, GC driver seeds) are
    /// not attributed.
    executing: Option<dgr_graph::PeId>,
    /// The marking cycle flow events are attributed to; a GC driver sets
    /// it at the start of each cycle so the causal trace of the marking
    /// wave groups by cycle.
    telem_cycle: u32,
    /// Heap tracker (the zero-sized no-op unless the `telemetry` feature
    /// is on): per-PE live-bytes clocks, waterlines and size classes,
    /// fed from the graph store's byte journal after every dispatch.
    heap: HeapTracker,
}

/// Phase tag and flow-event name of a marking message, by slot: the
/// task-marking wave (`M_T`) and the priority-marking wave (`M_R`) are
/// traced under distinct names so a cycle analyzer can keep their
/// fan-outs apart.
fn mark_flow_meta(m: &MarkMsg) -> (Phase, &'static str) {
    match m.slot() {
        Slot::T => (Phase::Mt, "M_T"),
        Slot::R => (Phase::Mr, "M_R"),
    }
}

impl System {
    /// Creates a system over the given graph and templates.
    pub fn new(mut graph: GraphStore, templates: TemplateStore, config: SystemConfig) -> Self {
        let sim = DetSim::new(config.num_pes, config.policy, config.seed);
        let telem = Registry::new(config.num_pes);
        let mut heap = HeapTracker::new(config.num_pes as usize);
        if heap.enabled() {
            // Stamp everything the builder phase allocated before the
            // tracker existed, so later reclaims of those vertices still
            // carry exact byte stamps, then journal all future traffic.
            let pm = PartitionMap::new(config.num_pes, graph.capacity(), config.partition);
            let live: Vec<_> = graph.live_ids().collect();
            for v in live {
                heap.alloc(
                    pm.pe_of(v).index(),
                    v.index(),
                    u64::from(graph.vertex_bytes(v)),
                );
            }
            graph.set_heap_journal(true);
        }
        System {
            graph,
            templates,
            mark_state: MarkState::new(),
            stats: RedStats::default(),
            result: None,
            config,
            sim,
            events: 0,
            telem,
            executing: None,
            telem_cycle: 0,
            heap,
        }
    }

    /// Sets the marking cycle number flow events are stamped with (GC
    /// drivers call this at the start of each cycle).
    pub fn set_telemetry_cycle(&mut self, cycle: u32) {
        self.telem_cycle = cycle;
    }

    /// The system's telemetry registry (the zero-sized no-op in a default
    /// build). GC drivers snapshot it around cycle phases.
    pub fn telemetry(&self) -> &Registry {
        &self.telem
    }

    /// The system's heap tracker (the zero-sized no-op in a default
    /// build). GC drivers close a heap cycle on it per marking cycle.
    pub fn heap_tracker(&self) -> &HeapTracker {
        &self.heap
    }

    /// The heap tracker, mutably (for `close_cycle` / `record_trigger` /
    /// `begin_episode` by GC drivers and bench harnesses).
    pub fn heap_tracker_mut(&mut self) -> &mut HeapTracker {
        &mut self.heap
    }

    /// Running heap totals (empty in a default build).
    pub fn heap_snapshot(&self) -> HeapSnapshot {
        self.heap.snapshot()
    }

    /// Replays the graph store's byte journal into the heap tracker,
    /// attributing each vertex's bytes to the PE that owns it under the
    /// current partition. Called after every dispatch; a GC driver also
    /// calls it after restructuring, whose frees bypass dispatch.
    pub fn drain_heap_journal(&mut self) {
        if !self.heap.enabled() || !self.graph.heap_journal_pending() {
            return;
        }
        let pm = self.partition();
        for delta in self.graph.take_heap_journal() {
            match delta {
                HeapDelta::Alloc { id, bytes } => {
                    self.heap
                        .alloc(pm.pe_of(id).index(), id.index(), u64::from(bytes));
                }
                HeapDelta::Free { id, bytes } => {
                    self.heap
                        .free(pm.pe_of(id).index(), id.index(), u64::from(bytes));
                }
                HeapDelta::Reweight { id, old, new } => {
                    self.heap.reweight(
                        pm.pe_of(id).index(),
                        id.index(),
                        u64::from(old),
                        u64::from(new),
                    );
                }
            }
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The current vertex-to-PE assignment (recomputed so heap growth is
    /// reflected).
    pub fn partition(&self) -> PartitionMap {
        PartitionMap::new(
            self.config.num_pes,
            self.graph.capacity(),
            self.config.partition,
        )
    }

    /// Events delivered so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The simulator (for task-pool inspection).
    pub fn sim(&self) -> &DetSim<SysMsg> {
        &self.sim
    }

    /// The simulator, mutably (for expunging and re-laning by a GC
    /// driver's restructuring phase).
    pub fn sim_mut(&mut self) -> &mut DetSim<SysMsg> {
        &mut self.sim
    }

    /// Routes and enqueues a reduction task with the given lane priority.
    pub fn send_red(&mut self, msg: RedMsg, prio: Priority) {
        let pe = msg
            .dest_vertex()
            .map(|v| self.partition().pe_of(v))
            .unwrap_or(dgr_graph::PeId::new(0));
        self.count_send(pe);
        self.sim
            .send(Envelope::new(pe, Lane::Reduction(prio), SysMsg::Red(msg)));
    }

    /// Routes and enqueues a marking task, recording a flow-send event
    /// (the causal edge's origin) on the sending PE — the currently
    /// executing one, or the destination for externally injected seeds.
    pub fn send_mark(&mut self, msg: MarkMsg) {
        let pe = msg
            .dest_vertex()
            .map(|v| self.partition().pe_of(v))
            .unwrap_or(dgr_graph::PeId::new(0));
        self.count_send(pe);
        let (fphase, fname) = mark_flow_meta(&msg);
        let src = self.executing.unwrap_or(pe);
        let seq = self
            .sim
            .send(Envelope::new(pe, Lane::Marking, SysMsg::Mark(msg)));
        // Flow id = seq + 1: the simulator's sequence numbers are unique
        // across the system's lifetime, and 0 stays the "no flow" value.
        self.telem
            .flow_send(src.raw(), self.telem_cycle, fphase, fname, seq + 1);
    }

    /// Attributes a send to the PE whose task is currently executing, as
    /// local (same PE) or remote. Sends with no executing task (external
    /// injection) are not counted.
    fn count_send(&self, dst: dgr_graph::PeId) {
        let Some(src) = self.executing else { return };
        let id = if src == dst {
            CounterId::SendsLocal
        } else {
            CounterId::SendsRemote
        };
        self.telem.pe(src.raw()).inc(id);
    }

    /// Spawns the initial task `<-, root>`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no root.
    pub fn demand_root(&mut self) {
        let root = self.graph.root().expect("reduction needs a root");
        self.send_red(
            RedMsg::Request {
                src: Requester::External,
                dst: root,
                kind: RequestKind::Vital,
            },
            Priority::Vital,
        );
    }

    /// Delivers and executes one task. Returns `false` if the system is
    /// quiescent.
    pub fn step(&mut self) -> bool {
        let Some((pe, lane, seq, msg)) = self.sim.next_event_tagged() else {
            return false;
        };
        self.flow_recv(pe, seq, &msg);
        self.dispatch(pe, lane, msg);
        true
    }

    /// Records the delivery end of a marking message's flow edge (see
    /// [`System::send_mark`]); reduction messages are not flow-traced.
    fn flow_recv(&self, pe: dgr_graph::PeId, seq: u64, msg: &SysMsg) {
        if let SysMsg::Mark(m) = msg {
            let (fphase, fname) = mark_flow_meta(m);
            self.telem
                .flow_recv(pe.raw(), self.telem_cycle, fphase, fname, seq + 1);
        }
    }

    /// Delivers and executes one task from the given lane (oldest first),
    /// regardless of the scheduling policy. Returns `false` if that lane
    /// is empty. Used by the GC driver to give marking tasks priority
    /// service during a collection phase (the paper's Section 6 remark
    /// that marking tasks may take precedence at a vertex).
    pub fn step_lane(&mut self, lane: Lane) -> bool {
        let Some((pe, lane, seq, msg)) = self.sim.next_event_in_lane_tagged(lane) else {
            return false;
        };
        self.flow_recv(pe, seq, &msg);
        self.dispatch(pe, lane, msg);
        true
    }

    fn dispatch(&mut self, pe: dgr_graph::PeId, lane: Lane, msg: SysMsg) {
        self.events += 1;
        let shard = self.telem.pe(pe.raw());
        match lane {
            Lane::Marking => shard.inc(CounterId::MarkEvents),
            Lane::Reduction(_) => shard.inc(CounterId::RedEvents),
            Lane::Mutator => shard.inc(CounterId::MutEvents),
        }
        self.executing = Some(pe);
        match msg {
            SysMsg::Red(RedMsg::Return {
                dst: Requester::External,
                value,
                ..
            }) => {
                self.result = Some(value);
            }
            SysMsg::Red(m) => {
                let mut out_red: Vec<(RedMsg, Priority)> = Vec::new();
                let mut out_mark: Vec<MarkMsg> = Vec::new();
                {
                    let mut ctx = EngineCtx {
                        state: &mut self.mark_state,
                        g: &mut self.graph,
                        templates: &self.templates,
                        speculation: self.config.speculation,
                        grow_step: self.config.grow_step,
                        stats: &mut self.stats,
                        out_red: &mut out_red,
                        out_mark: &mut out_mark,
                    };
                    handle_red(&mut ctx, m);
                }
                for (m, p) in out_red {
                    self.send_red(m, p);
                }
                for m in out_mark {
                    self.send_mark(m);
                }
            }
            SysMsg::Mark(m) => {
                let mut out: Vec<MarkMsg> = Vec::new();
                handle_mark(&mut self.mark_state, &mut self.graph, m, &mut |m| {
                    out.push(m)
                });
                for m in out {
                    self.send_mark(m);
                }
            }
        }
        self.executing = None;
        self.drain_heap_journal();
    }

    /// Demands the root and runs until the result arrives, the system is
    /// quiescent, or the event budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.demand_root();
        self.run_more()
    }

    /// Continues running without demanding the root again.
    pub fn run_more(&mut self) -> RunOutcome {
        while self.result.is_none() && self.events < self.config.max_events {
            if !self.step() {
                return RunOutcome::Quiescent;
            }
        }
        match &self.result {
            Some(v) => RunOutcome::Value(v.clone()),
            None => {
                if self.sim.is_empty() {
                    RunOutcome::Quiescent
                } else {
                    RunOutcome::Budget
                }
            }
        }
    }

    /// The endpoints of every pending reduction task, including tasks "in
    /// transit" between PEs — the seeds for `M_T`'s virtual task roots.
    pub fn pending_task_endpoints(&self) -> TaskEndpoints {
        let mut t = TaskEndpoints::new();
        for (_pe, _lane, msg) in self.sim.iter_pending() {
            if let Some(red) = msg.as_red() {
                let (s, d) = red.endpoints();
                if let Some(s) = s {
                    t.push_seed(s);
                }
                if let Some(d) = d {
                    t.push_seed(d);
                }
            }
        }
        t
    }

    /// Consumes the system, returning the graph.
    pub fn into_graph(self) -> GraphStore {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use dgr_graph::{NodeLabel, PrimOp, Template, TemplateNode, TemplateRef};

    fn run_expr(build: impl FnOnce(&mut Builder<'_>) -> dgr_graph::VertexId) -> RunOutcome {
        run_expr_cfg(build, TemplateStore::new(), SystemConfig::default())
    }

    fn run_expr_cfg(
        build: impl FnOnce(&mut Builder<'_>) -> dgr_graph::VertexId,
        templates: TemplateStore,
        config: SystemConfig,
    ) -> RunOutcome {
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let root = build(&mut b);
        g.set_root(root);
        let mut sys = System::new(g, templates, config);
        sys.run()
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn heap_tracker_stamps_builder_vertices_and_runtime_traffic() {
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let two = b.int(2);
        let three = b.int(3);
        let root = b.prim2(PrimOp::Add, two, three);
        g.set_root(root);
        let built_bytes = g.live_bytes();
        assert!(built_bytes > 0);

        let mut sys = System::new(g, TemplateStore::new(), SystemConfig::default());
        // Builder-phase vertices were bulk-stamped at construction.
        assert_eq!(sys.heap_snapshot().live, built_bytes);
        assert_eq!(sys.run(), RunOutcome::Value(Value::Int(5)));

        let s = sys.heap_snapshot();
        // The ledger mirrors the graph's own clock, and every byte freed
        // so far carried an exact allocation stamp.
        assert_eq!(s.live, sys.graph.live_bytes());
        assert_eq!(s.alloc_bytes, sys.graph.alloc_bytes_total());
        assert!(s.peak >= s.live);
        assert_eq!(s.exact_bytes, s.freed_bytes);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn heap_tracker_is_silent_feature_off() {
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let two = b.int(2);
        let three = b.int(3);
        let root = b.prim2(PrimOp::Add, two, three);
        g.set_root(root);
        let mut sys = System::new(g, TemplateStore::new(), SystemConfig::default());
        assert_eq!(sys.run(), RunOutcome::Value(Value::Int(5)));
        // The no-op tracker records nothing, but the graph's own
        // always-on byte clock still runs (the pressure trigger needs it).
        assert!(sys.heap_snapshot().is_empty());
        assert!(sys.graph.alloc_bytes_total() > 0);
    }

    #[test]
    fn arithmetic_tree() {
        // (2 * 3) + (10 - 4) = 12
        let out = run_expr(|b| {
            let two = b.int(2);
            let three = b.int(3);
            let m = b.prim2(PrimOp::Mul, two, three);
            let ten = b.int(10);
            let four = b.int(4);
            let s = b.prim2(PrimOp::Sub, ten, four);
            b.prim2(PrimOp::Add, m, s)
        });
        assert_eq!(out, RunOutcome::Value(Value::Int(12)));
    }

    #[test]
    fn shared_subexpression_computed_once() {
        // x + x where x = 3 * 7: sharing through the multigraph.
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let three = b.int(3);
        let seven = b.int(7);
        let x = b.prim2(PrimOp::Mul, three, seven);
        let root = b.prim2(PrimOp::Add, x, x);
        g.set_root(root);
        let mut sys = System::new(g, TemplateStore::new(), SystemConfig::default());
        assert_eq!(sys.run(), RunOutcome::Value(Value::Int(42)));
    }

    #[test]
    fn conditional_takes_then_branch() {
        let out = run_expr(|b| {
            let one = b.int(1);
            let two = b.int(2);
            let p = b.prim2(PrimOp::Lt, one, two);
            let t = b.int(10);
            let e = b.int(20);
            b.if_(p, t, e)
        });
        assert_eq!(out, RunOutcome::Value(Value::Int(10)));
    }

    #[test]
    fn conditional_takes_else_branch() {
        let out = run_expr(|b| {
            let p = b.bool_(false);
            let t = b.int(10);
            let e = b.int(20);
            b.if_(p, t, e)
        });
        assert_eq!(out, RunOutcome::Value(Value::Int(20)));
    }

    #[test]
    fn conditional_with_speculation() {
        for seed in 0..8 {
            let cfg = SystemConfig {
                speculation: true,
                policy: SchedPolicy::Random { marking_bias: 0.5 },
                seed,
                ..Default::default()
            };
            let out = run_expr_cfg(
                |b| {
                    let one = b.int(1);
                    let two = b.int(2);
                    let p = b.prim2(PrimOp::Lt, one, two);
                    let t10 = b.int(10);
                    let t20 = b.int(20);
                    let t = b.prim2(PrimOp::Add, t10, t20);
                    let e3 = b.int(3);
                    let e4 = b.int(4);
                    let e = b.prim2(PrimOp::Mul, e3, e4);
                    b.if_(p, t, e)
                },
                TemplateStore::new(),
                cfg,
            );
            assert_eq!(out, RunOutcome::Value(Value::Int(30)), "seed {seed}");
        }
    }

    #[test]
    fn lazy_branch_is_never_demanded_without_speculation() {
        // The else branch divides by zero; without speculation it must not
        // poison the result.
        let out = run_expr(|b| {
            let p = b.bool_(true);
            let t = b.int(1);
            let seven = b.int(7);
            let zero = b.int(0);
            let e = b.prim2(PrimOp::Div, seven, zero);
            b.if_(p, t, e)
        });
        assert_eq!(out, RunOutcome::Value(Value::Int(1)));
    }

    #[test]
    fn speculation_of_bottom_branch_does_not_poison_result() {
        // With speculation the div-by-zero branch runs eagerly but its ⊥
        // is discarded once the predicate chooses the other branch.
        let cfg = SystemConfig {
            speculation: true,
            ..Default::default()
        };
        let out = run_expr_cfg(
            |b| {
                let p = b.bool_(true);
                let t = b.int(1);
                let seven = b.int(7);
                let zero = b.int(0);
                let e = b.prim2(PrimOp::Div, seven, zero);
                b.if_(p, t, e)
            },
            TemplateStore::new(),
            cfg,
        );
        assert_eq!(out, RunOutcome::Value(Value::Int(1)));
    }

    #[test]
    fn list_head_and_tail() {
        // head (tail (cons 1 (cons 2 nil))) = 2
        let out = run_expr(|b| {
            let l = b.int_list(&[1, 2]);
            let t = b.prim1(PrimOp::Tail, l);
            b.prim1(PrimOp::Head, t)
        });
        assert_eq!(out, RunOutcome::Value(Value::Int(2)));
    }

    #[test]
    fn isnil_distinguishes() {
        let out = run_expr(|b| {
            let l = b.int_list(&[]);
            b.prim1(PrimOp::IsNil, l)
        });
        assert_eq!(out, RunOutcome::Value(Value::Bool(true)));
        let out = run_expr(|b| {
            let l = b.int_list(&[1]);
            b.prim1(PrimOp::IsNil, l)
        });
        assert_eq!(out, RunOutcome::Value(Value::Bool(false)));
    }

    #[test]
    fn head_of_nil_is_bottom() {
        let out = run_expr(|b| {
            let l = b.nil();
            b.prim1(PrimOp::Head, l)
        });
        assert_eq!(out, RunOutcome::Value(Value::Bottom));
    }

    #[test]
    fn self_referential_sum_deadlocks() {
        // Figure 3-1: x = x + 1 drains to quiescence with no result.
        let mut g = GraphStore::with_capacity(4);
        let x = g.alloc(NodeLabel::Prim(PrimOp::Add)).unwrap();
        let one = g.alloc(NodeLabel::lit_int(1)).unwrap();
        g.connect(x, x);
        g.connect(x, one);
        g.set_root(x);
        let mut sys = System::new(g, TemplateStore::new(), SystemConfig::default());
        assert_eq!(sys.run(), RunOutcome::Quiescent);
        assert!(sys.result.is_none());
    }

    fn inc_store() -> (TemplateStore, u32) {
        let mut ts = TemplateStore::new();
        let id = ts.register(
            Template::new(
                "inc",
                1,
                vec![
                    TemplateNode::new(
                        NodeLabel::Prim(PrimOp::Add),
                        vec![TemplateRef::Param(0), TemplateRef::Local(1)],
                    ),
                    TemplateNode::new(NodeLabel::lit_int(1), vec![]),
                ],
            )
            .unwrap(),
        );
        (ts, id)
    }

    #[test]
    fn saturated_application_expands() {
        let (ts, inc) = inc_store();
        let out = run_expr_cfg(
            |b| {
                let f = b.fn_ref(inc);
                let x = b.int(41);
                b.apply(f, &[x])
            },
            ts,
            SystemConfig::default(),
        );
        assert_eq!(out, RunOutcome::Value(Value::Int(42)));
    }

    #[test]
    fn partial_application_returns_function_value() {
        // const = \x y -> x; root = (const 7) applied later... here we
        // just check the partial value forms.
        let mut ts = TemplateStore::new();
        let konst = ts.register(
            Template::new(
                "const",
                2,
                vec![TemplateNode::new(
                    NodeLabel::Ind,
                    vec![TemplateRef::Param(0)],
                )],
            )
            .unwrap(),
        );
        let out = run_expr_cfg(
            |b| {
                let f = b.fn_ref(konst);
                let seven = b.int(7);
                b.apply(f, &[seven])
            },
            ts,
            SystemConfig::default(),
        );
        match out {
            RunOutcome::Value(Value::Fn(id, caps)) => {
                assert_eq!(id, konst);
                assert_eq!(caps.len(), 1);
            }
            other => panic!("expected partial application, got {other:?}"),
        }
    }

    #[test]
    fn curried_application_through_partial_value() {
        // ((const 7) 9) = 7, where the inner application is a separate
        // vertex returning a partial Fn value.
        let mut ts = TemplateStore::new();
        let konst = ts.register(
            Template::new(
                "const",
                2,
                vec![TemplateNode::new(
                    NodeLabel::Ind,
                    vec![TemplateRef::Param(0)],
                )],
            )
            .unwrap(),
        );
        let out = run_expr_cfg(
            |b| {
                let f = b.fn_ref(konst);
                let seven = b.int(7);
                let partial = b.apply(f, &[seven]);
                let nine = b.int(9);
                b.apply(partial, &[nine])
            },
            ts,
            SystemConfig::default(),
        );
        assert_eq!(out, RunOutcome::Value(Value::Int(7)));
    }

    #[test]
    fn oversaturated_application_splits() {
        // id inc 41 = 42, where id = \x -> x applied to 2 arguments.
        let mut ts = TemplateStore::new();
        let id = ts.register(
            Template::new(
                "id",
                1,
                vec![TemplateNode::new(
                    NodeLabel::Ind,
                    vec![TemplateRef::Param(0)],
                )],
            )
            .unwrap(),
        );
        let inc = ts.register(
            Template::new(
                "inc",
                1,
                vec![
                    TemplateNode::new(
                        NodeLabel::Prim(PrimOp::Add),
                        vec![TemplateRef::Param(0), TemplateRef::Local(1)],
                    ),
                    TemplateNode::new(NodeLabel::lit_int(1), vec![]),
                ],
            )
            .unwrap(),
        );
        let out = run_expr_cfg(
            |b| {
                let idf = b.fn_ref(id);
                let incf = b.fn_ref(inc);
                let x = b.int(41);
                b.apply(idf, &[incf, x])
            },
            ts,
            SystemConfig::default(),
        );
        assert_eq!(out, RunOutcome::Value(Value::Int(42)));
    }

    #[test]
    fn recursive_function_runs() {
        // sum(n) = if n == 0 then 0 else n + sum(n - 1); sum(10) = 55.
        let mut ts = TemplateStore::new();
        let sum = 0u32; // will be id 0: self-reference via fn_ref-like global
        let tpl = Template::new(
            "sum",
            1,
            vec![
                // 0: if (n == 0) 0 (n + sum (n - 1))
                TemplateNode::new(
                    NodeLabel::If,
                    vec![
                        TemplateRef::Local(1),
                        TemplateRef::Local(2),
                        TemplateRef::Local(3),
                    ],
                ),
                // 1: n == 0
                TemplateNode::new(
                    NodeLabel::Prim(PrimOp::Eq),
                    vec![TemplateRef::Param(0), TemplateRef::Local(2)],
                ),
                // 2: 0
                TemplateNode::new(NodeLabel::lit_int(0), vec![]),
                // 3: n + (sum (n-1))
                TemplateNode::new(
                    NodeLabel::Prim(PrimOp::Add),
                    vec![TemplateRef::Param(0), TemplateRef::Local(4)],
                ),
                // 4: apply sum (n-1)
                TemplateNode::new(
                    NodeLabel::Apply,
                    vec![TemplateRef::Local(5), TemplateRef::Local(6)],
                ),
                // 5: the function value for sum itself
                TemplateNode::new(NodeLabel::Lit(Value::Fn(sum, vec![])), vec![]),
                // 6: n - 1
                TemplateNode::new(
                    NodeLabel::Prim(PrimOp::Sub),
                    vec![TemplateRef::Param(0), TemplateRef::Local(7)],
                ),
                // 7: 1
                TemplateNode::new(NodeLabel::lit_int(1), vec![]),
            ],
        )
        .unwrap();
        assert_eq!(ts.register(tpl), sum);
        let out = run_expr_cfg(
            |b| {
                let f = b.fn_ref(sum);
                let n = b.int(10);
                b.apply(f, &[n])
            },
            ts,
            SystemConfig::default(),
        );
        assert_eq!(out, RunOutcome::Value(Value::Int(55)));
    }

    #[test]
    fn results_identical_across_policies_and_pes() {
        let (ts, inc) = inc_store();
        for policy in [
            SchedPolicy::Fifo,
            SchedPolicy::Lifo,
            SchedPolicy::RoundRobin,
            SchedPolicy::PriorityFirst,
            SchedPolicy::Random { marking_bias: 0.3 },
        ] {
            for pes in [1u16, 3, 8] {
                let cfg = SystemConfig {
                    policy,
                    num_pes: pes,
                    seed: 42,
                    ..Default::default()
                };
                let out = run_expr_cfg(
                    |b| {
                        let f = b.fn_ref(inc);
                        let x0 = b.int(0);
                        let a1 = b.apply(f, &[x0]);
                        let a2 = b.apply(f, &[a1]);
                        b.apply(f, &[a2])
                    },
                    ts.clone(),
                    cfg,
                );
                assert_eq!(out, RunOutcome::Value(Value::Int(3)));
            }
        }
    }

    #[test]
    fn fixed_heap_exhaustion_yields_bottom() {
        let (ts, inc) = inc_store();
        let mut g = GraphStore::with_capacity(3);
        let f = g.alloc(NodeLabel::Lit(Value::Fn(inc, vec![]))).unwrap();
        let x = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let app = g.alloc(NodeLabel::Apply).unwrap();
        g.connect(app, f);
        g.connect(app, x);
        g.set_root(app);
        let cfg = SystemConfig {
            grow_step: 0,
            ..Default::default()
        };
        let mut sys = System::new(g, ts, cfg);
        assert_eq!(sys.run(), RunOutcome::Value(Value::Bottom));
        assert!(sys.stats.bottoms > 0);
        assert_eq!(sys.stats.grows, 0);
    }

    #[test]
    fn heap_grows_when_allowed() {
        let (ts, inc) = inc_store();
        let mut g = GraphStore::with_capacity(3);
        let f = g.alloc(NodeLabel::Lit(Value::Fn(inc, vec![]))).unwrap();
        let x = g.alloc(NodeLabel::lit_int(1)).unwrap();
        let app = g.alloc(NodeLabel::Apply).unwrap();
        g.connect(app, f);
        g.connect(app, x);
        g.set_root(app);
        let cfg = SystemConfig {
            grow_step: 16,
            ..Default::default()
        };
        let mut sys = System::new(g, ts, cfg);
        assert_eq!(sys.run(), RunOutcome::Value(Value::Int(2)));
        assert!(sys.stats.grows > 0);
    }

    #[test]
    fn pending_task_endpoints_cover_in_flight_tasks() {
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let one = b.int(1);
        let two = b.int(2);
        let root = b.prim2(PrimOp::Add, one, two);
        g.set_root(root);
        let mut sys = System::new(g, TemplateStore::new(), SystemConfig::default());
        sys.demand_root();
        let t = sys.pending_task_endpoints();
        assert_eq!(t.seeds(), &[root], "initial task <-, root>");
        sys.step(); // execute the initial request: spawns 2 arg requests
        let t = sys.pending_task_endpoints();
        assert!(t.seeds().contains(&one) && t.seeds().contains(&two));
        assert!(t.seeds().contains(&root), "sources included");
    }

    #[test]
    fn stats_track_activity() {
        let (ts, inc) = inc_store();
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let f = b.fn_ref(inc);
        let x = b.int(1);
        let root = b.apply(f, &[x]);
        g.set_root(root);
        let mut sys = System::new(g, ts, SystemConfig::default());
        sys.run();
        assert!(sys.stats.requests > 0);
        assert!(sys.stats.returns > 0);
        assert_eq!(sys.stats.expansions, 1);
        assert_eq!(sys.stats.dangling_requests, 0);
    }
}
