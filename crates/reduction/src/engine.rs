//! The reduction rules: execution of request and return tasks.

use dgr_core::{coop, MarkMsg, MarkState};
use dgr_graph::{GraphStore, NodeLabel, PrimOp, Priority, RequestKind, Requester, Value, VertexId};

use crate::msg::RedMsg;
use crate::stats::RedStats;
use crate::templates::{TemplateId, TemplateStore};

/// Everything the engine needs to execute one reduction task.
///
/// The borrowed fields are deliberately separate (rather than a single
/// `&mut System`) so the engine can be driven by any runtime: the
/// [`System`](crate::System) simulator loop, the GC driver in `dgr-gc`,
/// or a test harness with a hand-rolled queue.
pub struct EngineCtx<'a> {
    /// Marking-process state, consulted by the cooperating mutators.
    pub state: &'a mut MarkState,
    /// The computation graph.
    pub g: &'a mut GraphStore,
    /// The program's supercombinators.
    pub templates: &'a TemplateStore,
    /// Evaluate conditional branches eagerly (Section 3.2).
    pub speculation: bool,
    /// Vertices to add when the free list runs dry (`0` = fixed heap; an
    /// exhausted fixed heap reduces the offending vertex to `⊥`).
    pub grow_step: usize,
    /// Engine counters.
    pub stats: &'a mut RedStats,
    /// Spawned reduction tasks with their scheduling priority.
    pub out_red: &'a mut Vec<(RedMsg, Priority)>,
    /// Spawned marking tasks (from the cooperating mutators).
    pub out_mark: &'a mut Vec<MarkMsg>,
}

/// Executes one reduction task atomically.
pub fn handle_red(ctx: &mut EngineCtx<'_>, msg: RedMsg) {
    match msg {
        RedMsg::Request { src, dst, kind } => request(ctx, src, dst, kind),
        RedMsg::Return { src, dst, value } => {
            match dst {
                Requester::Vertex(v) => ret(ctx, src, v, value),
                // Returns to the external observer are intercepted by the
                // runtime before reaching the engine; tolerate them anyway.
                Requester::External => {}
            }
        }
    }
}

fn push_red(ctx: &mut EngineCtx<'_>, msg: RedMsg, prio: Priority) {
    ctx.out_red.push((msg, prio));
}

/// Spawns a return task `<v, to>` carrying `value`.
fn reply(ctx: &mut EngineCtx<'_>, v: VertexId, to: Requester, value: Value) {
    if let Requester::Vertex(x) = to {
        ctx.g.touch(x);
    }
    push_red(
        ctx,
        RedMsg::Return {
            src: v,
            dst: to,
            value,
        },
        Priority::Vital,
    );
}

/// Executes a request task `<src, v>`.
fn request(ctx: &mut EngineCtx<'_>, src: Requester, v: VertexId, kind: RequestKind) {
    ctx.stats.requests += 1;
    if kind == RequestKind::Eager {
        ctx.stats.eager_requests += 1;
    }
    if ctx.g.is_free(v) {
        // An irrelevant task that escaped expunging reached a reclaimed
        // vertex. Counted; never happens when restructuring purges pools.
        ctx.stats.dangling_requests += 1;
        return;
    }
    ctx.g.touch(v);
    if let Some(val) = ctx.g.vertex(v).value.clone() {
        reply(ctx, v, src, val);
        return;
    }
    coop::add_requester(ctx.state, ctx.g, v, src, &mut |m| ctx.out_mark.push(m));
    {
        let vert = ctx.g.vertex_mut(v);
        vert.demand = vert.demand.max(kind.priority());
    }
    if ctx.g.vertex(v).requested().len() == 1 {
        // First demand: activate the vertex.
        dispatch(ctx, v);
    }
}

/// Activates vertex `v` according to its label (on first demand, and again
/// after an `expand-node` relabels it).
fn dispatch(ctx: &mut EngineCtx<'_>, v: VertexId) {
    let label = ctx.g.vertex(v).label.clone();
    let argc = ctx.g.vertex(v).args().len();
    match label {
        NodeLabel::Lit(val) => complete(ctx, v, val),
        NodeLabel::Prim(op) => {
            if argc != op.arity() {
                bottom(ctx, v);
            } else {
                for i in 0..argc {
                    request_arg(ctx, v, i, RequestKind::Vital);
                }
            }
        }
        NodeLabel::If => {
            if argc != 3 {
                bottom(ctx, v);
            } else {
                request_arg(ctx, v, 0, RequestKind::Vital);
                if ctx.speculation {
                    request_arg(ctx, v, 1, RequestKind::Eager);
                    request_arg(ctx, v, 2, RequestKind::Eager);
                }
            }
        }
        NodeLabel::Cons => {
            if argc != 2 {
                bottom(ctx, v);
            } else {
                let (h, t) = (ctx.g.vertex(v).args()[0], ctx.g.vertex(v).args()[1]);
                complete(ctx, v, Value::Cons(h, t));
            }
        }
        NodeLabel::Apply => {
            if argc == 0 {
                bottom(ctx, v);
            } else {
                request_arg(ctx, v, 0, RequestKind::Vital);
            }
        }
        NodeLabel::Ind => {
            if argc != 1 {
                bottom(ctx, v);
            } else {
                request_arg(ctx, v, 0, RequestKind::Vital);
            }
        }
        NodeLabel::Hole => bottom(ctx, v),
    }
}

/// Requests the value of arg `i` of `v` (no-op if already requested):
/// records the request kind in `req-args` and spawns the request task.
fn request_arg(ctx: &mut EngineCtx<'_>, v: VertexId, i: usize, kind: RequestKind) {
    if ctx.g.vertex(v).request_kinds()[i].is_some() {
        return;
    }
    ctx.g.vertex_mut(v).set_request_kind(i, Some(kind));
    let dst = ctx.g.vertex(v).args()[i];
    // The spawned task makes `dst` task-reachable even though the arc
    // just left the `args − req-args` view M_T traces; stamp it so the
    // deadlock report cannot misread it (see `Vertex::touched`).
    ctx.g.touch(dst);
    // The scheduling lane is `min(demand(v), request-type)` — a vital
    // sub-request of a speculative computation is itself speculative work
    // relative to the whole program (the paper's min-over-path rule).
    let lane = ctx.g.vertex(v).demand.min(kind.priority());
    push_red(
        ctx,
        RedMsg::Request {
            src: Requester::Vertex(v),
            dst,
            kind,
        },
        lane,
    );
}

/// Completes `v` with `value`: stores it, deletes the references to the
/// arguments (this is what turns exhausted subcomputations into garbage),
/// and replies to every requester.
fn complete(ctx: &mut EngineCtx<'_>, v: VertexId, value: Value) {
    {
        let vert = ctx.g.vertex_mut(v);
        vert.value = Some(value.clone());
        // delete-reference on every remaining argument arc. Arc removal
        // never requires marking cooperation. Vertices the value itself
        // names (cons components, captured arguments) stay reachable via
        // the value.
        vert.replace_args(Vec::new());
    }
    let requesters = ctx.g.vertex_mut(v).take_requested();
    for r in requesters {
        reply(ctx, v, r, value.clone());
    }
}

/// Completes `v` with `⊥` (type errors, division by zero, malformed
/// graphs).
fn bottom(ctx: &mut EngineCtx<'_>, v: VertexId) {
    ctx.stats.bottoms += 1;
    // Any speculative interest this vertex held is dropped so that the
    // corresponding requesters are not kept waiting on arcs that will
    // never produce anything; complete() then clears the arcs.
    let argc = ctx.g.vertex(v).args().len();
    for i in (0..argc).rev() {
        if ctx.g.vertex(v).request_kinds()[i].is_some() && ctx.g.vertex(v).arg_values()[i].is_none()
        {
            dereference_at(ctx, v, i);
        }
    }
    complete(ctx, v, Value::Bottom);
}

/// Removes arc `i` of `v` and retracts `v` from the target's `requested`
/// set — the paper's *dereference* of a speculatively demanded vertex.
fn dereference_at(ctx: &mut EngineCtx<'_>, v: VertexId, i: usize) {
    let (target, kind) = ctx.g.vertex_mut(v).remove_arg_at(i);
    ctx.g.remove_requester(target, Requester::Vertex(v));
    if kind == Some(RequestKind::Eager) {
        ctx.stats.dereferences += 1;
    }
}

/// Executes a return task `<src, v>` carrying `value`.
fn ret(ctx: &mut EngineCtx<'_>, src: VertexId, v: VertexId, value: Value) {
    ctx.stats.returns += 1;
    if ctx.g.is_free(v) {
        ctx.stats.stale_returns += 1;
        return;
    }
    ctx.g.touch(v);
    if ctx.g.vertex(v).value.is_some() {
        ctx.stats.stale_returns += 1;
        return;
    }
    // Find the arc this return answers: first occurrence of src that was
    // requested and has not yet received a value (multigraph-safe).
    let slot = {
        let vert = ctx.g.vertex(v);
        (0..vert.args().len()).find(|&i| {
            vert.args()[i] == src
                && vert.request_kinds()[i].is_some()
                && vert.arg_values()[i].is_none()
        })
    };
    let Some(i) = slot else {
        // The arc was dereferenced while the return was in flight.
        ctx.stats.stale_returns += 1;
        return;
    };
    ctx.g.vertex_mut(v).set_arg_value(i, value.clone());

    match ctx.g.vertex(v).label.clone() {
        NodeLabel::Prim(op) => prim_return(ctx, v, op),
        NodeLabel::If => if_return(ctx, v, i, value),
        NodeLabel::Apply => apply_return(ctx, v, i, value),
        NodeLabel::Ind => complete(ctx, v, value),
        _ => {
            ctx.stats.stale_returns += 1;
        }
    }
}

fn prim_return(ctx: &mut EngineCtx<'_>, v: VertexId, op: PrimOp) {
    match op {
        PrimOp::Head | PrimOp::Tail => head_tail_return(ctx, v, op),
        PrimOp::IsNil => {
            let val = ctx.g.vertex(v).arg_values()[0]
                .clone()
                .expect("just stored");
            let out = match val {
                Value::Nil => Value::Bool(true),
                Value::Cons(..) => Value::Bool(false),
                Value::Bottom => Value::Bottom,
                _ => {
                    ctx.stats.bottoms += 1;
                    Value::Bottom
                }
            };
            complete(ctx, v, out);
        }
        _ => {
            if ctx.g.vertex(v).pending_arg_values() == 0 {
                let vals: Vec<Value> = ctx
                    .g
                    .vertex(v)
                    .arg_values()
                    .iter()
                    .map(|o| o.clone().expect("all arrived"))
                    .collect();
                let out = eval_strict(op, &vals, ctx.stats);
                complete(ctx, v, out);
            }
        }
    }
}

/// `head` / `tail`: phase 1 receives the spine's weak head normal form;
/// if it is a cons cell, the component is reached with the cooperating
/// `add-reference` (three adjacent vertices: `v → spine → component`) and
/// then requested; phase 2 completes with the component's value.
fn head_tail_return(ctx: &mut EngineCtx<'_>, v: VertexId, op: PrimOp) {
    if ctx.g.vertex(v).args().len() == 1 {
        let spine_val = ctx.g.vertex(v).arg_values()[0]
            .clone()
            .expect("just stored");
        match spine_val {
            Value::Cons(h, t) => {
                let spine = ctx.g.vertex(v).args()[0];
                let target = if op == PrimOp::Head { h } else { t };
                ctx.stats.add_references += 1;
                let added = coop::add_reference(ctx.state, ctx.g, v, spine, target, &mut |m| {
                    ctx.out_mark.push(m)
                });
                if added.is_err() {
                    bottom(ctx, v);
                    return;
                }
                let idx = ctx.g.vertex(v).args().len() - 1;
                request_arg(ctx, v, idx, RequestKind::Vital);
            }
            _ => bottom(ctx, v),
        }
    } else {
        // Phase 2: the component's value arrived (index 1).
        let val = ctx.g.vertex(v).arg_values()[1].clone().expect("phase 2");
        complete(ctx, v, val);
    }
}

fn if_return(ctx: &mut EngineCtx<'_>, v: VertexId, i: usize, value: Value) {
    if i == 0 {
        // The predicate arrived.
        match value.as_bool() {
            None => bottom(ctx, v),
            Some(b) => {
                let keep_idx = if b { 1 } else { 2 };
                let drop_idx = if b { 2 } else { 1 };
                dereference_at(ctx, v, drop_idx);
                let keep = if drop_idx < keep_idx {
                    keep_idx - 1
                } else {
                    keep_idx
                };
                // args are now [pred, kept-branch].
                if let Some(val) = ctx.g.vertex(v).arg_values()[keep].clone() {
                    // Speculation already delivered the branch.
                    complete(ctx, v, val);
                    return;
                }
                match ctx.g.vertex(v).request_kinds()[keep] {
                    Some(RequestKind::Eager) => {
                        // The speculation turned out to be needed: upgrade
                        // (the dynamic re-prioritization of Section 3.2;
                        // tasks already in flight are re-laned by the next
                        // GC cycle).
                        ctx.g
                            .vertex_mut(v)
                            .set_request_kind(keep, Some(RequestKind::Vital));
                        ctx.stats.upgrades += 1;
                    }
                    None => request_arg(ctx, v, keep, RequestKind::Vital),
                    Some(RequestKind::Vital) => {}
                }
            }
        }
    } else if ctx.g.vertex(v).args().len() == 2 && i == 1 {
        // The chosen branch's value arrived after branching.
        complete(ctx, v, value);
    }
    // Otherwise: a speculative branch returned before the predicate —
    // already stored in arg_values, nothing more to do.
}

fn apply_return(ctx: &mut EngineCtx<'_>, v: VertexId, i: usize, value: Value) {
    if i != 0 {
        ctx.stats.stale_returns += 1;
        return;
    }
    match value {
        Value::Fn(tpl_id, caps) => {
            if ctx.templates.try_get(tpl_id).is_none() {
                bottom(ctx, v);
                return;
            }
            let mut total = caps;
            total.extend_from_slice(&ctx.g.vertex(v).args()[1..]);
            let arity = ctx.templates.arity(tpl_id);
            use std::cmp::Ordering::*;
            match total.len().cmp(&arity) {
                Equal => expand_in_place(ctx, v, tpl_id, &total),
                Less => complete(ctx, v, Value::Fn(tpl_id, total)),
                Greater => oversaturated(ctx, v, tpl_id, &total),
            }
        }
        Value::Bottom => bottom(ctx, v),
        _ => bottom(ctx, v), // applying a non-function
    }
}

/// Grows the store if the free list cannot supply `needed` vertices and
/// growth is allowed. Returns `false` if the heap is exhausted for good.
fn ensure_free(ctx: &mut EngineCtx<'_>, needed: usize) -> bool {
    if ctx.g.free_count() >= needed {
        return true;
    }
    if ctx.grow_step == 0 {
        return false;
    }
    ctx.g.grow(needed.max(ctx.grow_step));
    ctx.stats.grows += 1;
    true
}

/// Saturated application: splice the supercombinator body below `v` with
/// the cooperating `expand-node`, then re-activate `v` under its new label.
fn expand_in_place(ctx: &mut EngineCtx<'_>, v: VertexId, tpl_id: TemplateId, actuals: &[VertexId]) {
    let needed = ctx.templates.get(tpl_id).extra_vertices();
    if !ensure_free(ctx, needed) {
        bottom(ctx, v);
        return;
    }
    ctx.stats.expansions += 1;
    let tpl = ctx.templates.get(tpl_id);
    let expanded = coop::expand_node(ctx.state, ctx.g, v, tpl, actuals, &mut |m| {
        ctx.out_mark.push(m)
    });
    if expanded.is_err() {
        bottom(ctx, v);
        return;
    }
    dispatch(ctx, v);
}

/// Over-saturated application `f x1 … xn` with `n > arity(f)`: create a
/// fresh inner vertex for the saturated part, rewire `v` to apply the
/// inner result to the leftover arguments, and demand the inner vertex.
/// The rewiring adds arcs outside the `add-reference` pattern, so the
/// generic arc-cooperation hooks are used.
fn oversaturated(ctx: &mut EngineCtx<'_>, v: VertexId, tpl_id: TemplateId, total: &[VertexId]) {
    let arity = ctx.templates.arity(tpl_id);
    let needed = 1 + ctx.templates.get(tpl_id).extra_vertices();
    if !ensure_free(ctx, needed) {
        bottom(ctx, v);
        return;
    }
    let b = ctx
        .g
        .alloc(NodeLabel::Hole)
        .expect("capacity ensured above");
    ctx.stats.expansions += 1;
    let tpl = ctx.templates.get(tpl_id);
    // b is fresh (unmarked in both slots); instantiating below it needs no
    // special coloring — the arc-cooperation below restores invariant 2.
    let expanded = coop::expand_node(ctx.state, ctx.g, b, tpl, &total[..arity], &mut |m| {
        ctx.out_mark.push(m)
    });
    if expanded.is_err() {
        ctx.g.free(b);
        bottom(ctx, v);
        return;
    }
    let mut new_args = vec![b];
    new_args.extend_from_slice(&total[arity..]);
    ctx.g.vertex_mut(v).replace_args(new_args.clone());
    for c in new_args {
        coop::coop_r_arc(ctx.state, ctx.g, v, c, &mut |m| ctx.out_mark.push(m));
        coop::coop_t_arc(ctx.state, ctx.g, v, c, &mut |m| ctx.out_mark.push(m));
    }
    request_arg(ctx, v, 0, RequestKind::Vital);
}

/// Strict scalar evaluation. Any `⊥` operand yields `⊥` (footnote 4's
/// definition of strictness); type errors yield `⊥` as well.
fn eval_strict(op: PrimOp, vals: &[Value], stats: &mut RedStats) -> Value {
    use PrimOp::*;
    use Value::*;
    if vals.iter().any(|v| v.is_bottom()) {
        return Bottom;
    }
    let out = match (op, vals) {
        (Add, [Int(a), Int(b)]) => Some(Int(a.wrapping_add(*b))),
        (Sub, [Int(a), Int(b)]) => Some(Int(a.wrapping_sub(*b))),
        (Mul, [Int(a), Int(b)]) => Some(Int(a.wrapping_mul(*b))),
        (Div, [Int(_), Int(0)]) | (Mod, [Int(_), Int(0)]) => None,
        (Div, [Int(a), Int(b)]) => Some(Int(a.wrapping_div(*b))),
        (Mod, [Int(a), Int(b)]) => Some(Int(a.wrapping_rem(*b))),
        (Neg, [Int(a)]) => Some(Int(a.wrapping_neg())),
        (Eq, [Int(a), Int(b)]) => Some(Bool(a == b)),
        (Eq, [Bool(a), Bool(b)]) => Some(Bool(a == b)),
        (Eq, [Nil, Nil]) => Some(Bool(true)),
        (Ne, [Int(a), Int(b)]) => Some(Bool(a != b)),
        (Ne, [Bool(a), Bool(b)]) => Some(Bool(a != b)),
        (Lt, [Int(a), Int(b)]) => Some(Bool(a < b)),
        (Le, [Int(a), Int(b)]) => Some(Bool(a <= b)),
        (Gt, [Int(a), Int(b)]) => Some(Bool(a > b)),
        (Ge, [Int(a), Int(b)]) => Some(Bool(a >= b)),
        (And, [Bool(a), Bool(b)]) => Some(Bool(*a && *b)),
        (Or, [Bool(a), Bool(b)]) => Some(Bool(*a || *b)),
        (Not, [Bool(a)]) => Some(Bool(!a)),
        _ => None,
    };
    out.unwrap_or_else(|| {
        stats.bottoms += 1;
        Bottom
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_strict_arithmetic() {
        let mut s = RedStats::default();
        assert_eq!(
            eval_strict(PrimOp::Add, &[Value::Int(2), Value::Int(3)], &mut s),
            Value::Int(5)
        );
        assert_eq!(
            eval_strict(PrimOp::Div, &[Value::Int(7), Value::Int(2)], &mut s),
            Value::Int(3)
        );
        assert_eq!(
            eval_strict(PrimOp::Div, &[Value::Int(7), Value::Int(0)], &mut s),
            Value::Bottom
        );
        assert_eq!(s.bottoms, 1);
    }

    #[test]
    fn eval_strict_is_bottom_preserving() {
        let mut s = RedStats::default();
        assert_eq!(
            eval_strict(PrimOp::Add, &[Value::Bottom, Value::Int(1)], &mut s),
            Value::Bottom
        );
        // Strictness propagation is not an error.
        assert_eq!(s.bottoms, 0);
    }

    #[test]
    fn eval_strict_type_errors() {
        let mut s = RedStats::default();
        assert_eq!(
            eval_strict(PrimOp::Add, &[Value::Bool(true), Value::Int(1)], &mut s),
            Value::Bottom
        );
        assert_eq!(
            eval_strict(PrimOp::And, &[Value::Int(1), Value::Int(2)], &mut s),
            Value::Bottom
        );
        assert_eq!(s.bottoms, 2);
    }

    #[test]
    fn eval_strict_comparisons_and_logic() {
        let mut s = RedStats::default();
        assert_eq!(
            eval_strict(PrimOp::Lt, &[Value::Int(1), Value::Int(2)], &mut s),
            Value::Bool(true)
        );
        assert_eq!(
            eval_strict(PrimOp::Eq, &[Value::Nil, Value::Nil], &mut s),
            Value::Bool(true)
        );
        assert_eq!(
            eval_strict(PrimOp::Not, &[Value::Bool(false)], &mut s),
            Value::Bool(true)
        );
        assert_eq!(
            eval_strict(PrimOp::Neg, &[Value::Int(3)], &mut s),
            Value::Int(-3)
        );
        assert_eq!(s.bottoms, 0);
    }
}
