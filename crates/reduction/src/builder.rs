//! Ergonomic construction of expression graphs.

use dgr_graph::{GraphStore, NodeLabel, PrimOp, Value, VertexId};

use crate::templates::TemplateId;

/// A convenience builder that allocates expression vertices into a
/// [`GraphStore`], growing the store when the free list runs dry.
///
/// # Example
///
/// ```
/// use dgr_reduction::Builder;
/// use dgr_graph::{GraphStore, PrimOp};
///
/// let mut g = GraphStore::new();
/// let mut b = Builder::new(&mut g);
/// let one = b.int(1);
/// let two = b.int(2);
/// let sum = b.prim2(PrimOp::Add, one, two);
/// g.set_root(sum);
/// assert_eq!(g.vertex(sum).args().len(), 2);
/// ```
#[derive(Debug)]
pub struct Builder<'g> {
    g: &'g mut GraphStore,
}

impl<'g> Builder<'g> {
    /// Creates a builder over the store.
    pub fn new(g: &'g mut GraphStore) -> Self {
        Builder { g }
    }

    fn alloc(&mut self, label: NodeLabel) -> VertexId {
        if self.g.free_count() == 0 {
            self.g.grow(64);
        }
        self.g.alloc(label).expect("grown above")
    }

    /// A literal value vertex.
    pub fn lit(&mut self, v: Value) -> VertexId {
        self.alloc(NodeLabel::Lit(v))
    }

    /// An integer literal.
    pub fn int(&mut self, n: i64) -> VertexId {
        self.lit(Value::Int(n))
    }

    /// A boolean literal.
    pub fn bool_(&mut self, b: bool) -> VertexId {
        self.lit(Value::Bool(b))
    }

    /// The empty list.
    pub fn nil(&mut self) -> VertexId {
        self.lit(Value::Nil)
    }

    /// A reference to a supercombinator (a function value with no captured
    /// arguments).
    pub fn fn_ref(&mut self, tpl: TemplateId) -> VertexId {
        self.lit(Value::Fn(tpl, Vec::new()))
    }

    /// A strict primitive application.
    ///
    /// # Panics
    ///
    /// Panics if the number of arguments does not match the operator's
    /// arity.
    pub fn prim(&mut self, op: PrimOp, args: &[VertexId]) -> VertexId {
        assert_eq!(args.len(), op.arity(), "{op} takes {} args", op.arity());
        let v = self.alloc(NodeLabel::Prim(op));
        for &a in args {
            self.g.connect(v, a);
        }
        v
    }

    /// A unary primitive application.
    pub fn prim1(&mut self, op: PrimOp, a: VertexId) -> VertexId {
        self.prim(op, &[a])
    }

    /// A binary primitive application.
    pub fn prim2(&mut self, op: PrimOp, a: VertexId, b: VertexId) -> VertexId {
        self.prim(op, &[a, b])
    }

    /// A conditional vertex.
    pub fn if_(&mut self, p: VertexId, t: VertexId, e: VertexId) -> VertexId {
        let v = self.alloc(NodeLabel::If);
        self.g.connect(v, p);
        self.g.connect(v, t);
        self.g.connect(v, e);
        v
    }

    /// A lazy cons cell.
    pub fn cons(&mut self, h: VertexId, t: VertexId) -> VertexId {
        let v = self.alloc(NodeLabel::Cons);
        self.g.connect(v, h);
        self.g.connect(v, t);
        v
    }

    /// A function application `f x1 … xn`.
    pub fn apply(&mut self, f: VertexId, args: &[VertexId]) -> VertexId {
        let v = self.alloc(NodeLabel::Apply);
        self.g.connect(v, f);
        for &a in args {
            self.g.connect(v, a);
        }
        v
    }

    /// An indirection to `target`.
    pub fn ind(&mut self, target: VertexId) -> VertexId {
        let v = self.alloc(NodeLabel::Ind);
        self.g.connect(v, target);
        v
    }

    /// A proper list of integers built from cons cells.
    pub fn int_list(&mut self, items: &[i64]) -> VertexId {
        let mut tail = self.nil();
        for &n in items.iter().rev() {
            let h = self.int(n);
            tail = self.cons(h, tail);
        }
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_grows_store() {
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        for i in 0..100 {
            b.int(i);
        }
        assert!(g.capacity() >= 100);
        assert_eq!(g.live_count(), 100);
    }

    #[test]
    fn if_wires_three_args() {
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let p = b.bool_(true);
        let t = b.int(1);
        let e = b.int(2);
        let v = b.if_(p, t, e);
        assert_eq!(g.vertex(v).args(), &[p, t, e]);
    }

    #[test]
    fn int_list_structure() {
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let l = b.int_list(&[1, 2]);
        // cons(1, cons(2, nil))
        let v = g.vertex(l);
        assert_eq!(v.label, NodeLabel::Cons);
        let tail = v.args()[1];
        assert_eq!(g.vertex(tail).label, NodeLabel::Cons);
        let nil = g.vertex(tail).args()[1];
        assert_eq!(g.vertex(nil).label, NodeLabel::Lit(Value::Nil));
    }

    #[test]
    #[should_panic(expected = "takes 2 args")]
    fn prim_arity_checked() {
        let mut g = GraphStore::new();
        let mut b = Builder::new(&mut g);
        let x = b.int(1);
        b.prim(PrimOp::Add, &[x]);
    }
}
