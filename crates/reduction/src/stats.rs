//! Reduction-engine statistics.

use serde::{Deserialize, Serialize};

/// Counters kept by the reduction engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedStats {
    /// Request tasks executed.
    pub requests: u64,
    /// Return tasks executed.
    pub returns: u64,
    /// Requests executed whose demand kind was eager (speculation).
    pub eager_requests: u64,
    /// Supercombinator expansions (`expand-node` invocations).
    pub expansions: u64,
    /// `add-reference` invocations (grandchild access).
    pub add_references: u64,
    /// Speculative branches dereferenced (the start of an irrelevant
    /// sub-workload).
    pub dereferences: u64,
    /// Eager arcs upgraded to vital when the speculation proved needed.
    pub upgrades: u64,
    /// Returns dropped because the target no longer awaits them (e.g. a
    /// dereferenced speculative branch replied anyway).
    pub stale_returns: u64,
    /// Requests dropped because the destination was already reclaimed —
    /// always zero in a correctly restructured system.
    pub dangling_requests: u64,
    /// Times the store had to grow because the free list was exhausted.
    pub grows: u64,
    /// Reductions that produced `⊥` (type errors, division by zero, …).
    pub bottoms: u64,
}

impl RedStats {
    /// Total reduction tasks executed.
    pub fn total_tasks(&self) -> u64 {
        self.requests + self.returns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = RedStats {
            requests: 3,
            returns: 4,
            ..Default::default()
        };
        assert_eq!(s.total_tasks(), 7);
    }
}
