//! Demand-driven and speculative graph reduction over the distributed
//! computation graph.
//!
//! This crate implements the *reduction process* of the paper's Section 2:
//! tasks propagate between adjacent vertices, carrying requests for values
//! downward and returning computed values upward. A strict vertex `v`
//! demanded by `s` adds `s` to `requested(v)`, spawns request tasks on its
//! arguments (recording them in `req-args_v(v)` or `req-args_e(v)`), and —
//! when all requested values have returned — computes its result and spawns
//! return tasks toward every requester.
//!
//! The engine supports:
//!
//! * **strict primitives** (arithmetic, comparison, list operations),
//! * **conditionals** with optional **speculative (eager) evaluation** of
//!   both branches — the source of the eager / irrelevant / reserve task
//!   taxonomy of Section 3.2,
//! * **lazy constructors** (`cons` in weak head normal form),
//! * **function application** by supercombinator template expansion, using
//!   the cooperating `expand-node` mutator primitive, including partial and
//!   over-saturated applications, and
//! * **indirections** and grandchild access via cooperating
//!   `add-reference` (how `head`/`tail` reach into a received cons cell).
//!
//! All graph mutations go through the cooperating primitives of
//! `dgr-core`, so reduction can run concurrently with the marking
//! processes.
//!
//! # Example
//!
//! ```
//! use dgr_reduction::{Builder, RunOutcome, System, SystemConfig, TemplateStore};
//! use dgr_graph::{GraphStore, PrimOp, Value};
//!
//! // (1 + 2) * 4, reduced on 4 simulated PEs.
//! let mut g = GraphStore::with_capacity(16);
//! let mut b = Builder::new(&mut g);
//! let one = b.int(1);
//! let two = b.int(2);
//! let sum = b.prim2(PrimOp::Add, one, two);
//! let four = b.int(4);
//! let root = b.prim2(PrimOp::Mul, sum, four);
//! g.set_root(root);
//!
//! let mut sys = System::new(g, TemplateStore::new(), SystemConfig::default());
//! match sys.run() {
//!     RunOutcome::Value(v) => assert_eq!(v, Value::Int(12)),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod engine;
mod msg;
mod stats;
mod system;
mod templates;

pub use builder::Builder;
pub use engine::{handle_red, EngineCtx};
pub use msg::{RedMsg, SysMsg};
pub use stats::RedStats;
pub use system::{RunOutcome, System, SystemConfig};
pub use templates::{TemplateId, TemplateStore};
