//! Reduction task messages and the combined system message type.

use dgr_core::MarkMsg;
use dgr_graph::{RequestKind, Requester, Value, VertexId};
use serde::{Deserialize, Serialize};

/// A task of the reduction process, represented as a message `<s, d>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RedMsg {
    /// `s` requests the value of `d` (spawned as `<s, d>`; executing it
    /// adds `s` to `requested(d)` and propagates demand further).
    Request {
        /// The requesting party (`-` for the initial task `<-, root>`).
        src: Requester,
        /// The vertex whose value is wanted.
        dst: VertexId,
        /// Whether the demand is vital or speculative.
        kind: RequestKind,
    },
    /// `src` returns its computed value to `dst` (the task `<src, dst>`
    /// spawned for each `s ∈ requested(src)` once the value is known).
    Return {
        /// The vertex that computed the value.
        src: VertexId,
        /// The party that requested it.
        dst: Requester,
        /// The computed value.
        value: Value,
    },
}

impl RedMsg {
    /// The vertex this task executes at, for routing; `None` for returns
    /// to the external observer.
    pub fn dest_vertex(&self) -> Option<VertexId> {
        match *self {
            RedMsg::Request { dst, .. } => Some(dst),
            RedMsg::Return { dst, .. } => dst.as_vertex(),
        }
    }

    /// The task's endpoints `(s, d)` as vertices, for seeding `M_T`'s
    /// virtual task roots. In-transit tasks are included this way, which
    /// substitutes for the paper's separate in-transit treatment: the
    /// simulator mailboxes *are* the task pools plus the network.
    pub fn endpoints(&self) -> (Option<VertexId>, Option<VertexId>) {
        match *self {
            RedMsg::Request { src, dst, .. } => (src.as_vertex(), Some(dst)),
            RedMsg::Return { src, dst, .. } => (Some(src), dst.as_vertex()),
        }
    }
}

/// The union message type delivered by a full system (reduction tasks,
/// marking tasks, or both, in their respective lanes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SysMsg {
    /// A reduction task.
    Red(RedMsg),
    /// A marking task.
    Mark(MarkMsg),
}

impl SysMsg {
    /// The vertex the message executes at, if any.
    pub fn dest_vertex(&self) -> Option<VertexId> {
        match self {
            SysMsg::Red(m) => m.dest_vertex(),
            SysMsg::Mark(m) => m.dest_vertex(),
        }
    }

    /// Returns the reduction task, if this is one.
    pub fn as_red(&self) -> Option<&RedMsg> {
        match self {
            SysMsg::Red(m) => Some(m),
            SysMsg::Mark(_) => None,
        }
    }
}

impl From<RedMsg> for SysMsg {
    fn from(m: RedMsg) -> Self {
        SysMsg::Red(m)
    }
}

impl From<MarkMsg> for SysMsg {
    fn from(m: MarkMsg) -> Self {
        SysMsg::Mark(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_endpoints() {
        let m = RedMsg::Request {
            src: Requester::Vertex(VertexId::new(1)),
            dst: VertexId::new(2),
            kind: RequestKind::Vital,
        };
        assert_eq!(m.dest_vertex(), Some(VertexId::new(2)));
        assert_eq!(
            m.endpoints(),
            (Some(VertexId::new(1)), Some(VertexId::new(2)))
        );
    }

    #[test]
    fn initial_task_has_no_source() {
        let m = RedMsg::Request {
            src: Requester::External,
            dst: VertexId::new(0),
            kind: RequestKind::Vital,
        };
        assert_eq!(m.endpoints(), (None, Some(VertexId::new(0))));
    }

    #[test]
    fn return_to_external_routes_nowhere() {
        let m = RedMsg::Return {
            src: VertexId::new(3),
            dst: Requester::External,
            value: Value::Int(1),
        };
        assert_eq!(m.dest_vertex(), None);
        assert_eq!(m.endpoints(), (Some(VertexId::new(3)), None));
    }

    #[test]
    fn sysmsg_conversions() {
        let r: SysMsg = RedMsg::Request {
            src: Requester::External,
            dst: VertexId::new(0),
            kind: RequestKind::Vital,
        }
        .into();
        assert!(r.as_red().is_some());
        let m: SysMsg = MarkMsg::Return {
            slot: dgr_graph::Slot::R,
            to: dgr_graph::MarkParent::RootPar,
        }
        .into();
        assert!(m.as_red().is_none());
        assert_eq!(m.dest_vertex(), None);
    }
}
