//! End-to-end: events generated through the real (always-compiled)
//! telemetry registry, rendered to both on-disk formats, parsed back and
//! analyzed. Uses `dgr_telemetry::active::Registry` by full path so the
//! workspace's telemetry feature stays untouched.

use dgr_telemetry::active::Registry;
use dgr_telemetry::{events_jsonl, flight_json, Phase};
use dgr_trace::{analyze, critical_paths, match_flows, parse_events, Kind};

/// Drives a small two-cycle marking wave: PE 0 fans out to PEs 1..4,
/// each delivery triggers one forward to the next PE.
fn record_wave(reg: &Registry) {
    for cycle in 1..=2u32 {
        let phase = if cycle == 1 { Phase::Mt } else { Phase::Mr };
        let name = phase.name();
        for dst in 1..4u64 {
            let flow = u64::from(cycle) * 100 + dst;
            reg.flow_send(0, cycle, phase, name, flow);
        }
        for dst in 1..4u16 {
            let flow = u64::from(cycle) * 100 + u64::from(dst);
            reg.flow_recv(dst, cycle, phase, name, flow);
            // Each delivery forwards once, extending the causal chain.
            let fwd = flow + 10;
            reg.flow_send(dst, cycle, phase, name, fwd);
            reg.flow_recv(dst % 3 + 1, cycle, phase, name, fwd);
        }
    }
}

#[test]
fn jsonl_round_trip_preserves_every_flow_event() {
    let reg = Registry::new(4);
    record_wave(&reg);
    let events = reg.drain_events();
    let parsed = parse_events(&events_jsonl(&events));
    assert_eq!(parsed.len(), events.len(), "every event parses back");
    for (orig, back) in events.iter().zip(&parsed) {
        assert_eq!(back.ts_us, orig.ts_us);
        assert_eq!(back.pe, orig.pe);
        assert_eq!(back.cycle, orig.cycle);
        assert_eq!(back.value, orig.value);
        assert_eq!(back.lamport, orig.lamport);
        assert_eq!(back.kind.name(), orig.kind.name());
    }
    let graph = match_flows(&parsed);
    assert_eq!(graph.edges.len(), 12, "6 flows per cycle, 2 cycles");
    assert_eq!(graph.orphan_sends, 0);
    assert_eq!(graph.orphan_recvs, 0);
}

#[test]
fn critical_path_span_never_exceeds_cycle_wall_clock() {
    let reg = Registry::new(4);
    record_wave(&reg);
    let parsed = parse_events(&events_jsonl(&reg.drain_events()));
    let paths = critical_paths(&match_flows(&parsed));
    assert_eq!(paths.len(), 2, "one critical path per cycle");
    for p in &paths {
        assert!(p.hops >= 1, "cycle {} chains at least one hop", p.cycle);
        assert!(
            p.span_us <= p.wall_us,
            "cycle {}: summed span {}us exceeds wall-clock {}us",
            p.cycle,
            p.span_us,
            p.wall_us
        );
        let hop_sum: u64 = p.path.iter().map(|h| h.duration_us()).sum();
        assert_eq!(p.span_us, hop_sum, "span is the sum of its hops");
        // Hops telescope: each departs at or after its parent arrived.
        for pair in p.path.windows(2) {
            assert!(pair[0].recv_ts <= pair[1].send_ts, "hops overlap");
            assert_eq!(pair[0].recv_pe, pair[1].send_pe, "chain changes PE");
        }
    }
}

#[test]
fn flight_dump_parses_like_the_jsonl_it_embeds() {
    let reg = Registry::new(4);
    record_wave(&reg);
    let events = reg.drain_events();
    let dump = flight_json(
        "invariant violation on PE 1: test",
        1,
        &events,
        0,
        &reg.snapshot(),
        &["pe=0 lane=Marking MarkMsg".to_string()],
    );
    let from_flight = parse_events(&dump);
    let from_jsonl = parse_events(&events_jsonl(&events));
    assert_eq!(
        from_flight, from_jsonl,
        "flight dump and jsonl parse to the same stream"
    );
    let run = analyze(&from_flight);
    assert_eq!(run.summary.flows, 12);
    assert!(run.summary.by_kind[Kind::FlowSend.name()] > 0);
}

#[test]
fn fanout_splits_mt_and_mr_phases() {
    let reg = Registry::new(4);
    record_wave(&reg);
    let parsed = parse_events(&events_jsonl(&reg.drain_events()));
    let run = analyze(&parsed);
    // Cycle 1 traffic is tagged M_T, cycle 2 M_R; both phases show up
    // with the same shape: a root burst of 3 plus three single forwards.
    for phase in ["M_T", "M_R"] {
        let hist = run
            .fanout
            .per_phase
            .get(phase)
            .unwrap_or_else(|| panic!("{phase} histogrammed"));
        assert_eq!(hist.get(&3), Some(&1), "{phase}: one root burst of 3");
        assert_eq!(hist.get(&1), Some(&3), "{phase}: three single forwards");
    }
}
