//! Speedup-gap attribution: where did the other `P-1` processors go?
//!
//! The work-stealing runtime's state clock charges every wall-clock
//! nanosecond of every PE to exactly one scheduler state and emits the
//! totals as `sched_*` instants when a pass ends. This module folds
//! those instants into per-PE clocks, estimates the workload's
//! inherent span (critical path), and splits the gap between observed
//! PE-time and useful work into named causes:
//!
//! * **useful work** — `sched_work`: executing tasks.
//! * **steal overhead** — `sched_steal_search`: probing victims.
//! * **mailbox delay** — `sched_mailbox_drain`: draining remote sends.
//! * **parking** — `sched_park`: blocked on the idle condvar.
//! * **termination** — `sched_quiesce`: the quiescence barrier.
//! * **idle** — `sched_spin` + `sched_yield`, split against the span
//!   estimate: with total work `W`, span `S` and `P` processors, even a
//!   perfect scheduler runs for `max(W/P, S)` wall-clock, so
//!   `max(0, P*S - W)` of idle time is a **true span limit**; whatever
//!   idle remains is **load imbalance** the scheduler failed to smooth.
//!
//! The span estimate comes from the flow-event critical path when the
//! stream carries `flow_send`/`flow_recv` pairs, else from a
//! `bsp_span_us` instant (a BSP-round lower bound a bench can emit),
//! else idle is attributed wholly to load imbalance and the report says
//! so. By the clock's exact-sum invariant a finished episode accounts
//! for 100% of its span; the report prints the worst PE's accounted
//! fraction so a truncated stream is visible.

use std::collections::BTreeMap;

use crate::{critical_paths, match_flows, Kind, ParsedEvent};

/// Scheduler states in clock order, as `(instant name, display name)`.
///
/// Mirrors `dgr_telemetry::SchedState::{event_name, name}`; kept as
/// string pairs so the analyzer stays free of runtime dependencies.
pub const SCHED_STATES: [(&str, &str); 7] = [
    ("sched_work", "work"),
    ("sched_steal_search", "steal_search"),
    ("sched_spin", "spin"),
    ("sched_yield", "yield"),
    ("sched_park", "park"),
    ("sched_mailbox_drain", "mailbox_drain"),
    ("sched_quiesce", "quiesce"),
];

/// Indices into a [`PeClock::ns`] array, matching [`SCHED_STATES`].
const WORK: usize = 0;
const STEAL_SEARCH: usize = 1;
const SPIN: usize = 2;
const YIELD: usize = 3;
const PARK: usize = 4;
const MAILBOX_DRAIN: usize = 5;
const QUIESCE: usize = 6;

/// One PE's reconstructed state clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeClock {
    /// The PE the clock belongs to.
    pub pe: u16,
    /// Nanoseconds per state, indexed like [`SCHED_STATES`].
    pub ns: [u64; 7],
    /// Episode span (first enter to last transition), nanoseconds.
    pub span_ns: u64,
}

impl PeClock {
    /// Total accounted nanoseconds across all states.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Accounted fraction of the episode span, in [0, 1]; 1.0 for an
    /// empty clock (nothing ran, nothing unaccounted).
    pub fn accounted(&self) -> f64 {
        if self.span_ns == 0 {
            return 1.0;
        }
        self.total_ns() as f64 / self.span_ns as f64
    }
}

/// Where the span estimate came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanSource {
    /// Summed per-cycle critical paths of matched flow edges.
    Flow,
    /// A `bsp_span_us` instant emitted by the bench harness.
    Bsp,
    /// No estimate available; idle is all called load imbalance.
    None,
}

impl SpanSource {
    /// Human-readable label for the report.
    pub fn name(self) -> &'static str {
        match self {
            SpanSource::Flow => "flow critical path",
            SpanSource::Bsp => "bsp round estimate",
            SpanSource::None => "none",
        }
    }
}

/// Per-PE clocks plus the span estimate — the input to [`attribution`].
#[derive(Debug, Clone)]
pub struct BlameReport {
    /// One clock per PE that emitted `sched_*` instants, by PE id.
    pub pes: Vec<PeClock>,
    /// Estimated inherent span of the workload, nanoseconds.
    pub est_span_ns: Option<u64>,
    /// Provenance of `est_span_ns`.
    pub span_source: SpanSource,
}

/// Folds a parsed stream into per-PE state clocks and a span estimate.
///
/// `sched_*` instants are keyed by `(pe, state)` and **sum**: the
/// runtime emits per-pass deltas, so a stream holding several passes on
/// one registry folds to the true multi-pass clock — each pass's
/// instants carry only its own time, and spans add because the span
/// instant is the pass's accounted time, not the wall-clock window.
pub fn blame(events: &[ParsedEvent]) -> BlameReport {
    let mut clocks: BTreeMap<u16, PeClock> = BTreeMap::new();
    let mut bsp_span_us: Option<u64> = None;
    for e in events {
        if e.kind != Kind::Instant {
            continue;
        }
        if e.name == "bsp_span_us" {
            bsp_span_us = Some(e.value);
            continue;
        }
        if e.name == "sched_span" {
            clocks.entry(e.pe).or_default().span_ns += e.value;
            continue;
        }
        if let Some(i) = SCHED_STATES.iter().position(|(ev, _)| *ev == e.name) {
            clocks.entry(e.pe).or_default().ns[i] += e.value;
        }
    }
    let graph = match_flows(events);
    let (est_span_ns, span_source) = if !graph.edges.is_empty() {
        let us: u64 = critical_paths(&graph).iter().map(|p| p.span_us).sum();
        (Some(us * 1000), SpanSource::Flow)
    } else if let Some(us) = bsp_span_us {
        (Some(us * 1000), SpanSource::Bsp)
    } else {
        (None, SpanSource::None)
    };
    let pes = clocks
        .into_iter()
        .map(|(pe, mut c)| {
            c.pe = pe;
            c
        })
        .collect();
    BlameReport {
        pes,
        est_span_ns,
        span_source,
    }
}

/// The speedup gap split into causes, each a fraction of total PE-time
/// (the sum of every PE's episode span). The fractions plus `work` sum
/// to each PE's accounted share, i.e. to ~1.0 for finished episodes.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Useful work.
    pub work: f64,
    /// Steal overhead (victim probing).
    pub steal: f64,
    /// Mailbox drain delay.
    pub mailbox: f64,
    /// Parked on the idle condvar.
    pub park: f64,
    /// Quiescence/termination barrier.
    pub quiesce: f64,
    /// Idle that even a perfect scheduler could not remove, bounded by
    /// the span estimate. Zero when no estimate is available.
    pub span_limit: f64,
    /// Idle beyond the span bound: work existed elsewhere but this PE
    /// spun or yielded instead of getting it.
    pub imbalance: f64,
    /// Worst per-PE accounted fraction — the report's confidence.
    pub min_accounted: f64,
}

impl Attribution {
    /// The largest non-work cause, as `(label, fraction)`.
    pub fn dominant(&self) -> (&'static str, f64) {
        let causes = [
            ("steal overhead", self.steal),
            ("mailbox delay", self.mailbox),
            ("parking", self.park),
            ("termination", self.quiesce),
            ("true span limit", self.span_limit),
            ("load imbalance", self.imbalance),
        ];
        causes
            .into_iter()
            .fold(("none", 0.0), |acc, c| if c.1 > acc.1 { c } else { acc })
    }
}

/// Computes the attribution from a [`BlameReport`].
pub fn attribution(r: &BlameReport) -> Attribution {
    let total_span: u64 = r.pes.iter().map(|c| c.span_ns).sum();
    if total_span == 0 {
        return Attribution {
            min_accounted: 1.0,
            ..Default::default()
        };
    }
    let sum = |i: usize| r.pes.iter().map(|c| c.ns[i]).sum::<u64>();
    let work = sum(WORK);
    let idle = sum(SPIN) + sum(YIELD);
    // max(0, P*S - W) of idle is unavoidable: wall >= max(W/P, S), so a
    // perfect run still burns that much PE-time waiting on the chain.
    let unavoidable = match r.est_span_ns {
        Some(s) => (s.saturating_mul(r.pes.len() as u64)).saturating_sub(work),
        None => 0,
    };
    let span_limit = idle.min(unavoidable);
    let frac = |ns: u64| ns as f64 / total_span as f64;
    Attribution {
        work: frac(work),
        steal: frac(sum(STEAL_SEARCH)),
        mailbox: frac(sum(MAILBOX_DRAIN)),
        park: frac(sum(PARK)),
        quiesce: frac(sum(QUIESCE)),
        span_limit: frac(span_limit),
        imbalance: frac(idle - span_limit),
        min_accounted: r.pes.iter().map(|c| c.accounted()).fold(1.0f64, f64::min),
    }
}

fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Renders the blame report and its attribution as plain text.
pub fn blame_text(r: &BlameReport) -> String {
    let mut out = String::new();
    if r.pes.is_empty() {
        out.push_str("no sched_* instants — was the run built with the `telemetry` feature?\n");
        return out;
    }
    let a = attribution(r);
    match r.est_span_ns {
        Some(ns) => out.push_str(&format!(
            "speedup-gap attribution over {} PEs (span estimate {} us via {})\n",
            r.pes.len(),
            ns / 1000,
            r.span_source.name()
        )),
        None => out.push_str(&format!(
            "speedup-gap attribution over {} PEs (no span estimate — idle counts as imbalance)\n",
            r.pes.len()
        )),
    }
    out.push_str("pe  span_us  acct%   work%  steal%  spin%  yield%  park%  mbox%  quies%\n");
    for c in &r.pes {
        let f = |i: usize| {
            if c.span_ns == 0 {
                0.0
            } else {
                c.ns[i] as f64 / c.span_ns as f64 * 100.0
            }
        };
        out.push_str(&format!(
            "{:>2}  {:>7}  {:>5.1}  {:>6.1}  {:>6.1}  {:>5.1}  {:>6.1}  {:>5.1}  {:>5.1}  {:>6.1}\n",
            c.pe,
            c.span_ns / 1000,
            c.accounted() * 100.0,
            f(WORK),
            f(STEAL_SEARCH),
            f(SPIN),
            f(YIELD),
            f(PARK),
            f(MAILBOX_DRAIN),
            f(QUIESCE),
        ));
    }
    out.push_str("aggregate (fractions of total PE-time):\n");
    out.push_str(&format!("  useful work      {:>7}\n", pct(a.work)));
    out.push_str(&format!("  steal overhead   {:>7}\n", pct(a.steal)));
    out.push_str(&format!("  mailbox delay    {:>7}\n", pct(a.mailbox)));
    out.push_str(&format!("  parking          {:>7}\n", pct(a.park)));
    out.push_str(&format!("  termination      {:>7}\n", pct(a.quiesce)));
    out.push_str(&format!(
        "  idle             {:>7} = true span limit {} + load imbalance {}\n",
        pct(a.span_limit + a.imbalance),
        pct(a.span_limit),
        pct(a.imbalance)
    ));
    let (cause, frac) = a.dominant();
    out.push_str(&format!(
        "dominant gap cause: {cause} ({} of PE-time)\n",
        pct(frac)
    ));
    out.push_str(&format!(
        "accounting: worst PE covers {} of its wall-clock (target >= 95%)\n",
        pct(a.min_accounted)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(pe: u16, name: &str, value: u64) -> ParsedEvent {
        ParsedEvent {
            ts_us: 0,
            pe,
            cycle: 0,
            phase: "M_R".to_string(),
            kind: Kind::Instant,
            name: name.to_string(),
            value,
            lamport: 0,
        }
    }

    /// A two-PE episode: PE 0 works the whole span, PE 1 works half and
    /// spins the other half.
    fn two_pe_stream(extra: Vec<ParsedEvent>) -> Vec<ParsedEvent> {
        let mut ev = vec![
            instant(0, "sched_work", 1_000_000),
            instant(0, "sched_span", 1_000_000),
            instant(1, "sched_work", 500_000),
            instant(1, "sched_spin", 500_000),
            instant(1, "sched_span", 1_000_000),
        ];
        ev.extend(extra);
        ev
    }

    #[test]
    fn clocks_fold_per_pe_by_summing_pass_deltas() {
        let mut ev = two_pe_stream(vec![]);
        // A second pass appends its own deltas for PE 0; the folded
        // clock is the sum of both passes.
        ev.push(instant(0, "sched_work", 2_000_000));
        ev.push(instant(0, "sched_span", 2_000_000));
        let r = blame(&ev);
        assert_eq!(r.pes.len(), 2);
        assert_eq!(r.pes[0].pe, 0);
        assert_eq!(r.pes[0].ns[WORK], 3_000_000);
        assert_eq!(r.pes[0].span_ns, 3_000_000);
        assert!((r.pes[0].accounted() - 1.0).abs() < 1e-12);
        assert_eq!(r.pes[1].total_ns(), 1_000_000);
        assert!((r.pes[1].accounted() - 1.0).abs() < 1e-12);
        assert_eq!(r.span_source, SpanSource::None);
    }

    #[test]
    fn without_a_span_estimate_idle_is_all_imbalance() {
        let r = blame(&two_pe_stream(vec![]));
        let a = attribution(&r);
        assert!((a.work - 0.75).abs() < 1e-9, "work {}", a.work);
        assert!((a.imbalance - 0.25).abs() < 1e-9);
        assert_eq!(a.span_limit, 0.0);
        assert_eq!(a.dominant().0, "load imbalance");
        assert!((a.min_accounted - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bsp_span_estimate_reclassifies_unavoidable_idle() {
        // Span estimate 900us: P*S - W = 2*900k - 1500k = 300k ns of the
        // 500k idle is unavoidable; 200k remains imbalance.
        let r = blame(&two_pe_stream(vec![instant(0, "bsp_span_us", 900)]));
        assert_eq!(r.span_source, SpanSource::Bsp);
        assert_eq!(r.est_span_ns, Some(900_000));
        let a = attribution(&r);
        assert!((a.span_limit - 0.15).abs() < 1e-9, "{}", a.span_limit);
        assert!((a.imbalance - 0.10).abs() < 1e-9, "{}", a.imbalance);
        assert_eq!(a.dominant().0, "true span limit");
    }

    #[test]
    fn flow_edges_outrank_the_bsp_estimate() {
        let flows = vec![
            ParsedEvent {
                ts_us: 10,
                pe: 0,
                cycle: 1,
                phase: "M_R".to_string(),
                kind: Kind::FlowSend,
                name: "M_R".to_string(),
                value: 7,
                lamport: 0,
            },
            ParsedEvent {
                ts_us: 260,
                pe: 1,
                cycle: 1,
                phase: "M_R".to_string(),
                kind: Kind::FlowRecv,
                name: "M_R".to_string(),
                value: 7,
                lamport: 0,
            },
            instant(0, "bsp_span_us", 900),
        ];
        let r = blame(&two_pe_stream(flows));
        assert_eq!(r.span_source, SpanSource::Flow);
        assert_eq!(r.est_span_ns, Some(250_000), "one 250us hop");
    }

    #[test]
    fn report_renders_every_cause_and_the_accounting_line() {
        let ev = two_pe_stream(vec![instant(0, "bsp_span_us", 900)]);
        let text = blame_text(&blame(&ev));
        for needle in [
            "speedup-gap attribution over 2 PEs",
            "bsp round estimate",
            "useful work",
            "steal overhead",
            "mailbox delay",
            "parking",
            "termination",
            "true span limit",
            "load imbalance",
            "dominant gap cause: true span limit",
            "target >= 95%",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_stream_renders_the_hint() {
        let text = blame_text(&blame(&[]));
        assert!(text.contains("no sched_* instants"), "{text}");
    }
}
