//! Offline vertex-lifecycle reconstruction from `lc_*` instants.
//!
//! The GC driver closes every completed cycle by emitting one instant
//! per lifecycle ledger field (`lc_garbage`, `lc_reclaimed`, `lc_exact`,
//! `lc_latency_sum`, `lc_float`, `lc_msgs_mt`, `lc_msgs_mr`, `lc_bound`)
//! plus up to four `lc_floater` instants whose value packs the offender
//! as `(vertex_index << 16) | min(age, 0xFFFF)`. This module folds a
//! parsed stream back into the per-cycle float/latency/message-cost
//! table — the same numbers the live `/status` lifecycle block shows,
//! recovered from the JSONL alone.
//!
//! Like [`blame`](crate::blame), instants are keyed by cycle with the
//! last value winning, so re-runs appended to one stream report the
//! final ledger of each cycle.

use std::collections::BTreeMap;

use crate::{Kind, ParsedEvent};

/// One completed cycle's reconstructed lifecycle ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleRow {
    /// The GC cycle number.
    pub cycle: u32,
    /// Vertices censused dead-but-unreclaimed (pre-reclaim).
    pub garbage: u64,
    /// Vertices reclaimed this cycle.
    pub reclaimed: u64,
    /// Reclaims that carried an exact latency stamp.
    pub exact: u64,
    /// Sum of the exact latencies, in cycles.
    pub latency_sum: u64,
    /// Vertices still floating after this cycle's reclaim.
    pub float: u64,
    /// `M_T` messages charged to the cycle.
    pub msgs_mt: u64,
    /// `M_R` messages charged to the cycle.
    pub msgs_mr: u64,
    /// Section 4 message-bound units charged to the cycle.
    pub bound: u64,
}

impl LifecycleRow {
    /// Mean exact reclamation latency in cycles (0 when nothing exact).
    pub fn mean_latency(&self) -> f64 {
        if self.exact == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.exact as f64
        }
    }

    /// Messages per reclaimed vertex (0 when nothing reclaimed).
    pub fn msgs_per_reclaimed(&self) -> f64 {
        if self.reclaimed == 0 {
            0.0
        } else {
            (self.msgs_mt + self.msgs_mr) as f64 / self.reclaimed as f64
        }
    }

    /// Observed messages over the bound (0 when no bound was metered).
    pub fn efficiency(&self) -> f64 {
        if self.bound == 0 {
            0.0
        } else {
            (self.msgs_mt + self.msgs_mr) as f64 / self.bound as f64
        }
    }
}

/// The reconstructed lifecycle table plus run-wide aggregates.
#[derive(Debug, Clone, Default)]
pub struct LifecycleReport {
    /// One row per cycle that closed a ledger, in cycle order.
    pub rows: Vec<LifecycleRow>,
    /// Worst floating vertices over the whole stream: `(vertex, age)`
    /// with the maximum age each vertex ever reached, oldest first.
    pub worst_floaters: Vec<(u32, u64)>,
}

impl LifecycleReport {
    /// Total vertices reclaimed across all rows.
    pub fn reclaimed(&self) -> u64 {
        self.rows.iter().map(|r| r.reclaimed).sum()
    }

    /// Total reclaims with an exact latency stamp.
    pub fn exact(&self) -> u64 {
        self.rows.iter().map(|r| r.exact).sum()
    }

    /// Run-wide mean exact latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        let exact = self.exact();
        if exact == 0 {
            0.0
        } else {
            self.rows.iter().map(|r| r.latency_sum).sum::<u64>() as f64 / exact as f64
        }
    }

    /// The float count after the last closed cycle.
    pub fn float_now(&self) -> u64 {
        self.rows.last().map(|r| r.float).unwrap_or(0)
    }
}

/// Unpacks an `lc_floater` value into `(vertex_index, age)`.
pub fn unpack_floater(value: u64) -> (u32, u64) {
    ((value >> 16) as u32, value & 0xFFFF)
}

/// Folds a parsed stream's `lc_*` instants into the per-cycle table.
pub fn lifecycle(events: &[ParsedEvent]) -> LifecycleReport {
    let mut rows: BTreeMap<u32, LifecycleRow> = BTreeMap::new();
    let mut floaters: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        if e.kind != Kind::Instant || !e.name.starts_with("lc_") {
            continue;
        }
        if e.name == "lc_floater" {
            let (v, age) = unpack_floater(e.value);
            let slot = floaters.entry(v).or_insert(0);
            *slot = (*slot).max(age);
            continue;
        }
        let row = rows.entry(e.cycle).or_default();
        match e.name.as_str() {
            "lc_garbage" => row.garbage = e.value,
            "lc_reclaimed" => row.reclaimed = e.value,
            "lc_exact" => row.exact = e.value,
            "lc_latency_sum" => row.latency_sum = e.value,
            "lc_float" => row.float = e.value,
            "lc_msgs_mt" => row.msgs_mt = e.value,
            "lc_msgs_mr" => row.msgs_mr = e.value,
            "lc_bound" => row.bound = e.value,
            _ => {}
        }
    }
    let mut worst: Vec<(u32, u64)> = floaters.into_iter().collect();
    worst.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    worst.truncate(8);
    LifecycleReport {
        rows: rows
            .into_iter()
            .map(|(cycle, mut r)| {
                r.cycle = cycle;
                r
            })
            .collect(),
        worst_floaters: worst,
    }
}

/// Renders the lifecycle table as a plain-text report.
pub fn lifecycle_text(r: &LifecycleReport) -> String {
    let mut out = String::new();
    if r.rows.is_empty() {
        out.push_str("no lc_* instants — was the run built with the `telemetry` feature?\n");
        return out;
    }
    let reclaimed = r.reclaimed();
    let exact = r.exact();
    let exact_pct = if reclaimed == 0 {
        100.0
    } else {
        exact as f64 / reclaimed as f64 * 100.0
    };
    out.push_str(&format!(
        "vertex lifecycle over {} cycles: {reclaimed} reclaimed ({exact} exact, {exact_pct:.1}%), \
         mean latency {:.2} cycles, float now {}\n",
        r.rows.len(),
        r.mean_latency(),
        r.float_now(),
    ));
    out.push_str("cycle  garbage  reclaim  exact  mean_lat  float  msgs_mt  msgs_mr  bound  msg/rec    eff\n");
    for row in &r.rows {
        out.push_str(&format!(
            "{:>5}  {:>7}  {:>7}  {:>5}  {:>8.2}  {:>5}  {:>7}  {:>7}  {:>5}  {:>7.2}  {:>5.2}\n",
            row.cycle,
            row.garbage,
            row.reclaimed,
            row.exact,
            row.mean_latency(),
            row.float,
            row.msgs_mt,
            row.msgs_mr,
            row.bound,
            row.msgs_per_reclaimed(),
            row.efficiency(),
        ));
    }
    if !r.worst_floaters.is_empty() {
        out.push_str("worst floaters (vertex: max age in cycles):\n");
        for (v, age) in &r.worst_floaters {
            out.push_str(&format!("  v{v}: {age}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lc(cycle: u32, name: &str, value: u64) -> ParsedEvent {
        ParsedEvent {
            ts_us: 0,
            pe: 0,
            cycle,
            phase: "gc".to_string(),
            kind: Kind::Instant,
            name: name.to_string(),
            value,
            lamport: 0,
        }
    }

    fn one_cycle(cycle: u32, reclaimed: u64, float: u64) -> Vec<ParsedEvent> {
        vec![
            lc(cycle, "lc_garbage", reclaimed + float),
            lc(cycle, "lc_reclaimed", reclaimed),
            lc(cycle, "lc_exact", reclaimed),
            lc(cycle, "lc_latency_sum", reclaimed * 2),
            lc(cycle, "lc_float", float),
            lc(cycle, "lc_msgs_mt", 10),
            lc(cycle, "lc_msgs_mr", 30),
            lc(cycle, "lc_bound", 50),
        ]
    }

    #[test]
    fn folds_rows_per_cycle_and_totals() {
        let mut ev = one_cycle(1, 4, 2);
        ev.extend(one_cycle(2, 6, 0));
        ev.push(lc(1, "lc_floater", (7 << 16) | 3));
        ev.push(lc(2, "lc_floater", (7 << 16) | 5)); // same vertex, older
        ev.push(lc(2, "lc_floater", (9 << 16) | 1));
        let r = lifecycle(&ev);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].cycle, 1);
        assert_eq!(r.rows[0].garbage, 6);
        assert_eq!(r.rows[0].float, 2);
        assert!((r.rows[0].mean_latency() - 2.0).abs() < 1e-9);
        assert!((r.rows[0].msgs_per_reclaimed() - 10.0).abs() < 1e-9);
        assert!((r.rows[0].efficiency() - 0.8).abs() < 1e-9);
        assert_eq!(r.reclaimed(), 10);
        assert_eq!(r.float_now(), 0, "last cycle drained the float");
        assert_eq!(
            r.worst_floaters,
            vec![(7, 5), (9, 1)],
            "max age per vertex, oldest first"
        );
    }

    #[test]
    fn last_value_wins_within_a_cycle() {
        let mut ev = one_cycle(3, 4, 1);
        ev.push(lc(3, "lc_reclaimed", 9));
        let r = lifecycle(&ev);
        assert_eq!(r.rows[0].reclaimed, 9);
    }

    #[test]
    fn unpack_matches_the_driver_packing() {
        assert_eq!(unpack_floater((1234 << 16) | 77), (1234, 77));
        assert_eq!(unpack_floater(0xFFFF), (0, 0xFFFF), "age saturates");
    }

    #[test]
    fn empty_stream_renders_the_hint() {
        let text = lifecycle_text(&lifecycle(&[]));
        assert!(text.contains("no lc_* instants"), "{text}");
    }

    #[test]
    fn report_renders_the_table_and_offenders() {
        let mut ev = one_cycle(1, 4, 2);
        ev.push(lc(1, "lc_floater", (42 << 16) | 6));
        let text = lifecycle_text(&lifecycle(&ev));
        assert!(text.contains("4 reclaimed (4 exact, 100.0%)"), "{text}");
        assert!(text.contains("float now 2"), "{text}");
        assert!(text.contains("worst floaters"), "{text}");
        assert!(text.contains("v42: 6"), "{text}");
    }
}
