//! `dgr-trace` — analyze dgr-telemetry event streams from the command
//! line.
//!
//! ```text
//! dgr-trace summarize      <events.jsonl | flight-N.json>
//! dgr-trace critical-path  <events.jsonl | flight-N.json> [--cycle N] [--verbose]
//! dgr-trace fanout         <events.jsonl | flight-N.json>
//! dgr-trace blame          <events.jsonl | flight-N.json>
//! dgr-trace lifecycle      <events.jsonl | flight-N.json>
//! dgr-trace heap           <events.jsonl | flight-N.json>
//! dgr-trace diff           <before.jsonl> <after.jsonl>
//! ```
//!
//! Both the JSON Lines file a bench run writes
//! (`BENCH_telemetry_events.jsonl`) and a flight-recorder dump
//! (`flight-<pe>.json`) are accepted everywhere a file is expected.

use std::process::ExitCode;

use dgr_trace::{
    analyze, critical_path_text, critical_paths, fanout, fanout_text, match_flows, parse_events,
    summarize, summary_text, ParsedEvent,
};

const USAGE: &str =
    "usage: dgr-trace <summarize|critical-path|fanout|blame|lifecycle|heap|diff> <file> [args]
  summarize     <file>                       run statistics and flow matching
  critical-path <file> [--cycle N] [--verbose]  longest causal hop chain per cycle
  fanout        <file>                       per-phase fan-out histograms
  blame         <file>                       speedup-gap attribution from state clocks
  lifecycle     <file>                       per-cycle float/latency/message-cost table
  heap          <file>                       per-cycle live/peak/trigger-cause table
  diff          <before> <after>             A/B comparison of two runs
<file> is an events JSONL (BENCH_telemetry_events.jsonl) or a flight dump (flight-<pe>.json)";

fn load(path: &str) -> Result<Vec<ParsedEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let events = parse_events(&text);
    if events.is_empty() {
        return Err(format!(
            "{path}: no events found — was the run built with the `telemetry` feature?"
        ));
    }
    Ok(events)
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = args.split_first().ok_or_else(|| USAGE.to_string())?;
    match cmd.as_str() {
        "summarize" => {
            let [path] = rest else {
                return Err(USAGE.to_string());
            };
            Ok(summary_text(&summarize(&load(path)?)))
        }
        "critical-path" => {
            let path = rest.first().ok_or_else(|| USAGE.to_string())?;
            let verbose = rest.iter().any(|a| a == "--verbose");
            let cycle: Option<u32> = rest
                .iter()
                .position(|a| a == "--cycle")
                .and_then(|i| rest.get(i + 1))
                .map(|v| v.parse().map_err(|_| format!("bad --cycle value: {v}")))
                .transpose()?;
            let mut paths = critical_paths(&match_flows(&load(path)?));
            if let Some(c) = cycle {
                paths.retain(|p| p.cycle == c);
            }
            Ok(critical_path_text(&paths, verbose))
        }
        "fanout" => {
            let [path] = rest else {
                return Err(USAGE.to_string());
            };
            Ok(fanout_text(&fanout(&load(path)?)))
        }
        "blame" => {
            let [path] = rest else {
                return Err(USAGE.to_string());
            };
            Ok(dgr_trace::blame_text(&dgr_trace::blame(&load(path)?)))
        }
        "lifecycle" => {
            let [path] = rest else {
                return Err(USAGE.to_string());
            };
            Ok(dgr_trace::lifecycle_text(&dgr_trace::lifecycle(&load(
                path,
            )?)))
        }
        "heap" => {
            let [path] = rest else {
                return Err(USAGE.to_string());
            };
            Ok(dgr_trace::heap_text(&dgr_trace::heap(&load(path)?)))
        }
        "diff" => {
            let [before, after] = rest else {
                return Err(USAGE.to_string());
            };
            let a = analyze(&load(before)?);
            let b = analyze(&load(after)?);
            Ok(dgr_trace::diff_text(before, &a, after, &b))
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
