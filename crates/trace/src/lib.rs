//! dgr-trace: offline analyzer for dgr-telemetry event streams.
//!
//! Input is either the JSON Lines file a bench run writes
//! (`BENCH_telemetry_events.jsonl`) or a flight-recorder dump
//! (`flight-<pe>.json`), whose `events` array embeds one event per line
//! in the same schema. The parser is line-oriented and tolerant: it
//! picks out every line that looks like an event object and ignores the
//! surrounding JSON scaffolding, so both formats — and truncated files —
//! parse without a real JSON library.
//!
//! From the parsed stream the analyzer reconstructs the per-cycle
//! marking-wave DAG out of `flow_send`/`flow_recv` pairs (matched by
//! flow id), then derives:
//!
//! * [`critical_paths`] — the longest causal chain of message hops per
//!   cycle: summed in-flight time, hop count, and per-PE residency.
//!   Consecutive hops never overlap in time (a hop departs only after
//!   its causal parent arrived), so the summed span is at most the
//!   cycle's wall-clock extent.
//! * [`fanout`] — how many sends each delivery causally triggered,
//!   histogrammed per phase (`M_T` vs `M_R`), which shows the shape of
//!   the marking wave: wide and shallow or narrow and deep.
//! * [`summarize`] / [`diff_text`] — whole-run statistics and an A/B
//!   comparison between two runs.
//! * [`blame`] — speedup-gap attribution: folds the `sched_*` state
//!   clock instants the work-stealing runtime emits into per-PE time
//!   breakdowns and names the dominant gap cause (load imbalance,
//!   steal overhead, mailbox delay, parking, or true span limit).
//! * [`lifecycle`] — vertex-lifecycle reconstruction: folds the `lc_*`
//!   instants the GC driver closes each cycle with into the per-cycle
//!   float/latency/message-cost table and the worst-floater list.
//! * [`heap`] — heap-pressure reconstruction: folds the `hp_*` instants
//!   the GC driver closes each cycle with into the per-cycle
//!   live/peak/trigger-cause table.

use std::collections::BTreeMap;

pub mod blame;
pub use blame::{attribution, blame, blame_text, Attribution, BlameReport, PeClock, SpanSource};
pub mod heap;
pub use heap::{heap, heap_text, HeapReport, HeapRow};
pub mod lifecycle;
pub use lifecycle::{lifecycle, lifecycle_text, unpack_floater, LifecycleReport, LifecycleRow};

/// Event kinds, mirroring the `kind` strings `dgr_telemetry` emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A span opened (`"begin"`).
    Begin,
    /// A span closed (`"end"`).
    End,
    /// A point event (`"instant"`).
    Instant,
    /// A message departed; `value` is the flow id (`"flow_send"`).
    FlowSend,
    /// A message arrived; `value` is the flow id (`"flow_recv"`).
    FlowRecv,
}

impl Kind {
    /// Parses the JSON `kind` string; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<Kind> {
        match s {
            "begin" => Some(Kind::Begin),
            "end" => Some(Kind::End),
            "instant" => Some(Kind::Instant),
            "flow_send" => Some(Kind::FlowSend),
            "flow_recv" => Some(Kind::FlowRecv),
            _ => None,
        }
    }

    /// The JSON `kind` string.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Begin => "begin",
            Kind::End => "end",
            Kind::Instant => "instant",
            Kind::FlowSend => "flow_send",
            Kind::FlowRecv => "flow_recv",
        }
    }
}

/// One event parsed back from a JSON Lines stream or flight dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Microseconds since the registry was created.
    pub ts_us: u64,
    /// Emitting (for sends: stamping) PE.
    pub pe: u16,
    /// Marking cycle the event belongs to (0 outside a cycle).
    pub cycle: u32,
    /// Phase tag (`M_T`, `M_R`, `classify`, `mutate`, `gc`).
    pub phase: String,
    /// What happened.
    pub kind: Kind,
    /// Site label (e.g. `M_T`, `M_R`, `msg`, `cycle`).
    pub name: String,
    /// Payload; for flow events this is the flow id.
    pub value: u64,
    /// Lamport timestamp at the emitting site.
    pub lamport: u64,
}

/// Extracts an unsigned integer field `"key": 123` from a JSON-ish line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts a string field `"key": "val"` from a JSON-ish line. Handles
/// the escapes our writers produce (`\"`, `\\`); stops at the closing
/// quote.
fn json_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start().strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            other => out.push(other),
        }
    }
    None
}

/// Parses every event-shaped line in `text`, ignoring everything else.
///
/// A line qualifies if (after trimming whitespace and a trailing comma)
/// it is an object that carries `ts_us`, a known `kind`, and a `pe` —
/// exactly what both the JSONL writer and the flight recorder's embedded
/// `events` array produce. Malformed or foreign lines are skipped, so a
/// truncated dump still yields its intact prefix.
pub fn parse_events(text: &str) -> Vec<ParsedEvent> {
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"ts_us\"") {
            continue;
        }
        let (Some(ts_us), Some(pe), Some(kind)) = (
            json_u64(line, "ts_us"),
            json_u64(line, "pe"),
            json_str(line, "kind").and_then(|k| Kind::parse(&k)),
        ) else {
            continue;
        };
        out.push(ParsedEvent {
            ts_us,
            pe: pe as u16,
            cycle: json_u64(line, "cycle").unwrap_or(0) as u32,
            phase: json_str(line, "phase").unwrap_or_default(),
            kind,
            name: json_str(line, "name").unwrap_or_default(),
            value: json_u64(line, "value").unwrap_or(0),
            lamport: json_u64(line, "lamport").unwrap_or(0),
        });
    }
    out
}

/// One resolved message hop: a `flow_send` matched to its `flow_recv`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEdge {
    /// Flow id shared by both endpoints.
    pub id: u64,
    /// Cycle stamped on the send.
    pub cycle: u32,
    /// Phase of the send (`M_T` or `M_R` for marking traffic).
    pub phase: String,
    /// Site label of the send.
    pub name: String,
    /// PE that stamped the send.
    pub send_pe: u16,
    /// Timestamp of the send.
    pub send_ts: u64,
    /// PE that resolved the flow.
    pub recv_pe: u16,
    /// Timestamp of the delivery.
    pub recv_ts: u64,
}

impl FlowEdge {
    /// In-flight time of this hop in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.recv_ts.saturating_sub(self.send_ts)
    }
}

/// The matched wave DAG plus the endpoints that failed to pair up.
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    /// Send/recv pairs, in recv order.
    pub edges: Vec<FlowEdge>,
    /// Sends with no recorded delivery (still in flight at the dump, or
    /// the delivery fell off the ring).
    pub orphan_sends: usize,
    /// Deliveries whose send was overwritten in the bounded ring.
    pub orphan_recvs: usize,
}

/// Pairs `flow_send` with `flow_recv` events by flow id.
///
/// Two passes, because an event stream drained from per-PE rings is
/// concatenated per PE, not globally time-ordered — a delivery can
/// appear in the stream before its send.
pub fn match_flows(events: &[ParsedEvent]) -> FlowGraph {
    let mut sends: BTreeMap<u64, &ParsedEvent> = BTreeMap::new();
    for e in events {
        if e.kind == Kind::FlowSend {
            sends.insert(e.value, e);
        }
    }
    let mut edges = Vec::new();
    let mut orphan_recvs = 0usize;
    for e in events {
        if e.kind != Kind::FlowRecv {
            continue;
        }
        match sends.remove(&e.value) {
            Some(s) => edges.push(FlowEdge {
                id: e.value,
                cycle: s.cycle,
                phase: s.phase.clone(),
                name: s.name.clone(),
                send_pe: s.pe,
                send_ts: s.ts_us,
                recv_pe: e.pe,
                recv_ts: e.ts_us,
            }),
            None => orphan_recvs += 1,
        }
    }
    edges.sort_by_key(|e| (e.recv_ts, e.id));
    FlowGraph {
        orphan_sends: sends.len(),
        orphan_recvs,
        edges,
    }
}

/// The longest causal chain of hops within one cycle.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Cycle the chain belongs to.
    pub cycle: u32,
    /// Summed in-flight time along the chain, microseconds. Hops on a
    /// chain never overlap (each departs after its parent arrived), so
    /// this is bounded by [`CriticalPath::wall_us`].
    pub span_us: u64,
    /// Number of hops on the chain.
    pub hops: usize,
    /// The hops in causal order.
    pub path: Vec<FlowEdge>,
    /// Per-PE share of `span_us`, attributed to the receiving PE of
    /// each hop (where the wave spent its time arriving).
    pub residency: BTreeMap<u16, u64>,
    /// Wall-clock extent of the cycle's flow activity: last delivery
    /// minus first send.
    pub wall_us: u64,
}

/// Computes the critical path of every cycle in the wave DAG.
///
/// A hop's causal parent is the chain ending in the latest delivery on
/// the hop's sending PE at or before the hop departed, within the same
/// cycle — the delivery whose handler (transitively) emitted the send.
/// Chains therefore telescope in time and the summed span cannot exceed
/// the cycle's wall-clock extent.
pub fn critical_paths(graph: &FlowGraph) -> Vec<CriticalPath> {
    let mut by_cycle: BTreeMap<u32, Vec<&FlowEdge>> = BTreeMap::new();
    for e in &graph.edges {
        by_cycle.entry(e.cycle).or_default().push(e);
    }
    let mut out = Vec::new();
    for (cycle, edges) in by_cycle {
        // edges arrive sorted by recv_ts (match_flows sorts); chain[i]
        // is the best summed span of any causal chain ending at edge i.
        let n = edges.len();
        let mut chain = vec![0u64; n];
        let mut prev = vec![usize::MAX; n];
        for i in 0..n {
            let mut best = 0u64;
            for j in 0..i {
                if edges[j].recv_pe == edges[i].send_pe
                    && edges[j].recv_ts <= edges[i].send_ts
                    && chain[j] > best
                {
                    best = chain[j];
                    prev[i] = j;
                }
            }
            chain[i] = best + edges[i].duration_us();
        }
        let Some(end) = (0..n).max_by_key(|&i| (chain[i], edges[i].recv_ts)) else {
            continue;
        };
        let mut path = Vec::new();
        let mut at = end;
        loop {
            path.push(edges[at].clone());
            if prev[at] == usize::MAX {
                break;
            }
            at = prev[at];
        }
        path.reverse();
        let mut residency = BTreeMap::new();
        for hop in &path {
            *residency.entry(hop.recv_pe).or_insert(0) += hop.duration_us();
        }
        let wall_us = edges
            .iter()
            .map(|e| e.recv_ts)
            .max()
            .unwrap_or(0)
            .saturating_sub(edges.iter().map(|e| e.send_ts).min().unwrap_or(0));
        out.push(CriticalPath {
            cycle,
            span_us: chain[end],
            hops: path.len(),
            path,
            residency,
            wall_us,
        });
    }
    out
}

/// Fan-out shape of the marking wave.
#[derive(Debug, Clone, Default)]
pub struct FanoutReport {
    /// Phase name → (sends triggered by one delivery → occurrences).
    pub per_phase: BTreeMap<String, BTreeMap<usize, u64>>,
    /// Root groups: injection bursts with no causal parent delivery
    /// (e.g. the driver seeding PE 0).
    pub roots: u64,
}

impl FanoutReport {
    /// Mean fan-out for one phase, if it appeared at all.
    pub fn mean(&self, phase: &str) -> Option<f64> {
        let hist = self.per_phase.get(phase)?;
        let (mut total, mut groups) = (0u64, 0u64);
        for (&count, &occ) in hist {
            total += count as u64 * occ;
            groups += occ;
        }
        (groups > 0).then(|| total as f64 / groups as f64)
    }
}

/// Groups every `flow_send` under its causal parent `flow_recv` (the
/// latest delivery on the same PE, same cycle, at or before the send)
/// and histograms the group sizes per phase of the sends. Parentless
/// sends on a PE form that PE's root group for the cycle.
pub fn fanout(events: &[ParsedEvent]) -> FanoutReport {
    // Group key: Some(index of the parent recv event) or None+(pe,cycle)
    // for roots. Last delivery per (pe, cycle) is tracked while scanning
    // in timestamp order.
    let mut order: Vec<&ParsedEvent> = events
        .iter()
        .filter(|e| matches!(e.kind, Kind::FlowSend | Kind::FlowRecv))
        .collect();
    order.sort_by_key(|e| e.ts_us);
    let mut last_recv: BTreeMap<(u16, u32), usize> = BTreeMap::new();
    // (group key, phase) → child count; roots keyed by pe with usize::MAX marker.
    let mut groups: BTreeMap<(usize, u16, String), usize> = BTreeMap::new();
    let mut root_keys: BTreeMap<(u16, u32), ()> = BTreeMap::new();
    for (i, e) in order.iter().enumerate() {
        match e.kind {
            Kind::FlowRecv => {
                last_recv.insert((e.pe, e.cycle), i);
            }
            Kind::FlowSend => {
                let parent = last_recv.get(&(e.pe, e.cycle)).copied();
                let key = match parent {
                    Some(p) => (p, e.pe, e.phase.clone()),
                    None => {
                        root_keys.insert((e.pe, e.cycle), ());
                        (usize::MAX - e.cycle as usize, e.pe, e.phase.clone())
                    }
                };
                *groups.entry(key).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    let mut report = FanoutReport {
        roots: root_keys.len() as u64,
        ..Default::default()
    };
    for ((_, _, phase), count) in groups {
        *report
            .per_phase
            .entry(phase)
            .or_default()
            .entry(count)
            .or_insert(0) += 1;
    }
    report
}

/// Whole-run statistics.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Total parsed events.
    pub events: usize,
    /// Event count per kind name.
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Event count per phase tag.
    pub by_phase: BTreeMap<String, u64>,
    /// Distinct PEs seen.
    pub pes: usize,
    /// Distinct cycles seen on flow events.
    pub cycles: usize,
    /// First and last timestamp, microseconds.
    pub ts_range: (u64, u64),
    /// Largest Lamport timestamp in the stream.
    pub max_lamport: u64,
    /// Matched flow edges.
    pub flows: usize,
    /// Sends with no delivery on record.
    pub orphan_sends: usize,
    /// Deliveries with no send on record.
    pub orphan_recvs: usize,
}

/// Summarizes a parsed stream (kinds, phases, PEs, flow matching).
pub fn summarize(events: &[ParsedEvent]) -> Summary {
    let graph = match_flows(events);
    let mut s = Summary {
        events: events.len(),
        flows: graph.edges.len(),
        orphan_sends: graph.orphan_sends,
        orphan_recvs: graph.orphan_recvs,
        ..Default::default()
    };
    let mut pes = BTreeMap::new();
    let mut cycles = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        *s.by_kind.entry(e.kind.name()).or_insert(0) += 1;
        *s.by_phase.entry(e.phase.clone()).or_insert(0) += 1;
        pes.insert(e.pe, ());
        if matches!(e.kind, Kind::FlowSend | Kind::FlowRecv) {
            cycles.insert(e.cycle, ());
        }
        s.max_lamport = s.max_lamport.max(e.lamport);
        s.ts_range = if i == 0 {
            (e.ts_us, e.ts_us)
        } else {
            (s.ts_range.0.min(e.ts_us), s.ts_range.1.max(e.ts_us))
        };
    }
    s.pes = pes.len();
    s.cycles = cycles.len();
    s
}

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders a [`Summary`] as a plain-text report.
pub fn summary_text(s: &Summary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "events: {} over {} PEs, {} cycles, ts {}..{} us, max lamport {}\n",
        s.events, s.pes, s.cycles, s.ts_range.0, s.ts_range.1, s.max_lamport
    ));
    for (kind, n) in &s.by_kind {
        out.push_str(&format!("  kind {kind:<10} {n}\n"));
    }
    for (phase, n) in &s.by_phase {
        out.push_str(&format!("  phase {phase:<9} {n}\n"));
    }
    out.push_str(&format!(
        "flows: {} matched, {} unresolved sends, {} orphan deliveries\n",
        s.flows, s.orphan_sends, s.orphan_recvs
    ));
    out
}

/// Renders per-cycle critical paths as a plain-text report.
pub fn critical_path_text(paths: &[CriticalPath], verbose: bool) -> String {
    let mut out = String::new();
    if paths.is_empty() {
        out.push_str("no flow edges — nothing to chain\n");
        return out;
    }
    out.push_str("cycle  span_us  wall_us  hops  residency (pe:us)\n");
    for p in paths {
        let res: Vec<String> = p
            .residency
            .iter()
            .map(|(pe, us)| format!("{pe}:{us}"))
            .collect();
        out.push_str(&format!(
            "{:>5}  {:>7}  {:>7}  {:>4}  {}\n",
            p.cycle,
            p.span_us,
            p.wall_us,
            p.hops,
            res.join(" ")
        ));
        if verbose {
            for hop in &p.path {
                out.push_str(&format!(
                    "         {} pe{} -> pe{}  {}us  (flow {})\n",
                    hop.name,
                    hop.send_pe,
                    hop.recv_pe,
                    hop.duration_us(),
                    hop.id
                ));
            }
        }
    }
    out
}

/// Renders the fan-out histograms as a plain-text report.
pub fn fanout_text(r: &FanoutReport) -> String {
    let mut out = String::new();
    if r.per_phase.is_empty() {
        out.push_str("no flow sends — nothing to histogram\n");
        return out;
    }
    out.push_str(&format!("root injection groups: {}\n", r.roots));
    for (phase, hist) in &r.per_phase {
        let mean = r.mean(phase).unwrap_or(0.0);
        out.push_str(&format!("phase {phase} (mean fan-out {}):\n", f2(mean)));
        for (count, occ) in hist {
            out.push_str(&format!("  fan-out {count:>3}: {occ}\n"));
        }
    }
    out
}

/// One run, fully analyzed — the unit [`diff_text`] compares.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Whole-run statistics.
    pub summary: Summary,
    /// Per-cycle critical paths.
    pub paths: Vec<CriticalPath>,
    /// Fan-out shape.
    pub fanout: FanoutReport,
}

/// Analyzes a parsed stream end to end.
pub fn analyze(events: &[ParsedEvent]) -> RunStats {
    let graph = match_flows(events);
    RunStats {
        summary: summarize(events),
        paths: critical_paths(&graph),
        fanout: fanout(events),
    }
}

fn mean_span(paths: &[CriticalPath]) -> f64 {
    if paths.is_empty() {
        return 0.0;
    }
    paths.iter().map(|p| p.span_us as f64).sum::<f64>() / paths.len() as f64
}

fn mean_hops(paths: &[CriticalPath]) -> f64 {
    if paths.is_empty() {
        return 0.0;
    }
    paths.iter().map(|p| p.hops as f64).sum::<f64>() / paths.len() as f64
}

fn delta_line(label: &str, a: f64, b: f64) -> String {
    let pct = if a.abs() > f64::EPSILON {
        format!("{:+.1}%", (b - a) / a * 100.0)
    } else {
        "n/a".to_string()
    };
    format!("  {label:<24} {:>12} -> {:>12}  {pct}\n", f2(a), f2(b))
}

/// Renders an A/B comparison of two analyzed runs.
pub fn diff_text(label_a: &str, a: &RunStats, label_b: &str, b: &RunStats) -> String {
    let mut out = String::new();
    out.push_str(&format!("diff: {label_a} -> {label_b}\n"));
    out.push_str(&delta_line(
        "events",
        a.summary.events as f64,
        b.summary.events as f64,
    ));
    out.push_str(&delta_line(
        "matched flows",
        a.summary.flows as f64,
        b.summary.flows as f64,
    ));
    out.push_str(&delta_line(
        "cycles",
        a.summary.cycles as f64,
        b.summary.cycles as f64,
    ));
    out.push_str(&delta_line(
        "critical path span us",
        mean_span(&a.paths),
        mean_span(&b.paths),
    ));
    out.push_str(&delta_line(
        "critical path hops",
        mean_hops(&a.paths),
        mean_hops(&b.paths),
    ));
    for phase in ["M_T", "M_R"] {
        if a.fanout.per_phase.contains_key(phase) || b.fanout.per_phase.contains_key(phase) {
            out.push_str(&delta_line(
                &format!("{phase} mean fan-out"),
                a.fanout.mean(phase).unwrap_or(0.0),
                b.fanout.mean(phase).unwrap_or(0.0),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, pe: u16, cycle: u32, phase: &str, kind: Kind, value: u64) -> ParsedEvent {
        ParsedEvent {
            ts_us: ts,
            pe,
            cycle,
            phase: phase.to_string(),
            kind,
            name: phase.to_string(),
            value,
            lamport: 0,
        }
    }

    #[test]
    fn parser_reads_jsonl_and_flight_lines_and_skips_noise() {
        let text = concat!(
            "{\"reason\": \"invariant violation\", \"pe\": 3,\n",
            "\"events\": [\n",
            "{\"ts_us\": 5, \"pe\": 1, \"cycle\": 2, \"phase\": \"M_R\", ",
            "\"kind\": \"flow_send\", \"name\": \"M_R\", \"value\": 9, \"lamport\": 4},\n",
            "{\"ts_us\": 8, \"pe\": 2, \"cycle\": 2, \"phase\": \"M_R\", ",
            "\"kind\": \"flow_recv\", \"name\": \"M_R\", \"value\": 9, \"lamport\": 5}\n",
            "],\n",
            "not json at all\n",
            "{\"ts_us\": 11, \"pe\": 0, \"cycle\": 0, \"phase\": \"gc\", ",
            "\"kind\": \"no_such_kind\", \"name\": \"x\", \"value\": 0, \"lamport\": 0}\n",
        );
        let events = parse_events(text);
        assert_eq!(events.len(), 2, "two well-formed events: {events:?}");
        assert_eq!(events[0].kind, Kind::FlowSend);
        assert_eq!(events[0].value, 9);
        assert_eq!(events[1].kind, Kind::FlowRecv);
        assert_eq!(events[1].lamport, 5);
        assert_eq!(events[1].pe, 2);
    }

    #[test]
    fn flows_match_by_id_and_count_orphans() {
        let events = vec![
            ev(1, 0, 1, "M_R", Kind::FlowSend, 10),
            ev(2, 0, 1, "M_R", Kind::FlowSend, 11),
            ev(4, 1, 1, "M_R", Kind::FlowRecv, 10),
            ev(5, 2, 1, "M_R", Kind::FlowRecv, 99), // send fell off the ring
        ];
        let g = match_flows(&events);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].id, 10);
        assert_eq!((g.edges[0].send_pe, g.edges[0].recv_pe), (0, 1));
        assert_eq!(g.orphan_sends, 1, "flow 11 never delivered");
        assert_eq!(g.orphan_recvs, 1, "flow 99 had no send");
    }

    #[test]
    fn critical_path_follows_the_longest_chain_and_telescopes() {
        // Chain: pe0 --(1..4)--> pe1 --(6..10)--> pe2, plus a fat but
        // isolated hop pe3 --(0..5)--> pe3 that no chain extends.
        let events = vec![
            ev(0, 3, 1, "M_R", Kind::FlowSend, 50),
            ev(1, 0, 1, "M_R", Kind::FlowSend, 1),
            ev(4, 1, 1, "M_R", Kind::FlowRecv, 1),
            ev(5, 3, 1, "M_R", Kind::FlowRecv, 50),
            ev(6, 1, 1, "M_R", Kind::FlowSend, 2),
            ev(10, 2, 1, "M_R", Kind::FlowRecv, 2),
        ];
        let paths = critical_paths(&match_flows(&events));
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.cycle, 1);
        assert_eq!(p.hops, 2, "the two chained hops beat the lone fat one");
        assert_eq!(p.span_us, (4 - 1) + (10 - 6));
        assert_eq!(p.path[0].id, 1);
        assert_eq!(p.path[1].id, 2);
        assert_eq!(p.wall_us, 10, "first send at 0, last recv at 10");
        assert!(p.span_us <= p.wall_us, "chains telescope inside the wall");
        assert_eq!(p.residency.get(&1), Some(&3));
        assert_eq!(p.residency.get(&2), Some(&4));
    }

    #[test]
    fn fanout_groups_sends_under_their_parent_delivery() {
        // pe0 injects two roots; the delivery on pe1 triggers three
        // sends; a later delivery on pe1 triggers one.
        let events = vec![
            ev(1, 0, 1, "M_T", Kind::FlowSend, 1),
            ev(2, 0, 1, "M_T", Kind::FlowSend, 2),
            ev(3, 1, 1, "M_T", Kind::FlowRecv, 1),
            ev(4, 1, 1, "M_T", Kind::FlowSend, 3),
            ev(5, 1, 1, "M_T", Kind::FlowSend, 4),
            ev(6, 1, 1, "M_T", Kind::FlowSend, 5),
            ev(7, 1, 1, "M_T", Kind::FlowRecv, 2),
            ev(8, 1, 1, "M_T", Kind::FlowSend, 6),
        ];
        let r = fanout(&events);
        assert_eq!(r.roots, 1, "one injection group on pe0");
        let hist = r.per_phase.get("M_T").expect("M_T histogrammed");
        assert_eq!(hist.get(&2), Some(&1), "the root burst of two");
        assert_eq!(hist.get(&3), Some(&1), "the three-send burst");
        assert_eq!(hist.get(&1), Some(&1), "the single-send burst");
        let mean = r.mean("M_T").expect("mean exists");
        assert!((mean - 2.0).abs() < 1e-9, "mean fan-out 2.0, got {mean}");
    }

    #[test]
    fn summary_and_diff_render() {
        let events = vec![
            ev(1, 0, 1, "M_R", Kind::FlowSend, 1),
            ev(4, 1, 1, "M_R", Kind::FlowRecv, 1),
            ev(5, 1, 1, "gc", Kind::Instant, 7),
        ];
        let s = summarize(&events);
        assert_eq!(s.events, 3);
        assert_eq!(s.flows, 1);
        assert_eq!(s.pes, 2);
        assert_eq!(s.cycles, 1);
        let text = summary_text(&s);
        assert!(text.contains("flows: 1 matched"), "{text}");
        let run = analyze(&events);
        let diff = diff_text("a", &run, "b", &run);
        assert!(
            diff.contains("+0.0%"),
            "identical runs diff to zero: {diff}"
        );
    }
}
