//! Offline heap-pressure reconstruction from `hp_*` instants.
//!
//! The GC driver closes every cycle's heap window by emitting one
//! instant per field (`hp_cause`, `hp_bound`, `hp_live`, `hp_peak`,
//! `hp_alloc_bytes`, `hp_freed_bytes`, `hp_allocs`, `hp_frees`,
//! `hp_exact_bytes`). This module folds a parsed stream back into the
//! per-cycle live/peak/trigger-cause table — the same numbers the live
//! `/status` heap block shows, recovered from the JSONL alone.
//!
//! Like [`lifecycle`](crate::lifecycle), instants are keyed by cycle
//! with the last value winning, so re-runs appended to one stream
//! report the final window of each cycle.

use std::collections::BTreeMap;

use crate::{Kind, ParsedEvent};

/// One cycle's reconstructed heap window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeapRow {
    /// The GC cycle number.
    pub cycle: u32,
    /// What started the cycle (the `TriggerCause` code: 0 period,
    /// 1 heap bytes).
    pub cause: u64,
    /// The byte bound in force (0 when the trigger watches none).
    pub bound: u64,
    /// Live bytes when the window closed (post-reclaim).
    pub live: u64,
    /// Peak live bytes inside the window.
    pub peak: u64,
    /// Bytes allocated during the window.
    pub alloc_bytes: u64,
    /// Bytes freed during the window.
    pub freed_bytes: u64,
    /// Allocations during the window.
    pub allocs: u64,
    /// Frees during the window.
    pub frees: u64,
    /// Freed bytes that carried an exact allocation stamp.
    pub exact_bytes: u64,
}

impl HeapRow {
    /// The trigger cause decoded (`"period"`, `"heap"`, or `"?"` for a
    /// code this analyzer doesn't know).
    pub fn cause_name(&self) -> &'static str {
        match self.cause {
            0 => "period",
            1 => "heap",
            _ => "?",
        }
    }

    /// Fraction of freed bytes with an exact stamp (1 when none freed).
    pub fn exact_fraction(&self) -> f64 {
        if self.freed_bytes == 0 {
            1.0
        } else {
            self.exact_bytes as f64 / self.freed_bytes as f64
        }
    }

    /// Peak live bytes over the bound (0 when no bound was in force):
    /// above 1, the cycle started too late to hold the waterline.
    pub fn pressure(&self) -> f64 {
        if self.bound == 0 {
            0.0
        } else {
            self.peak as f64 / self.bound as f64
        }
    }
}

/// The reconstructed heap table plus run-wide aggregates.
#[derive(Debug, Clone, Default)]
pub struct HeapReport {
    /// One row per closed cycle window, in cycle order.
    pub rows: Vec<HeapRow>,
}

impl HeapReport {
    /// Largest peak over all windows.
    pub fn peak(&self) -> u64 {
        self.rows.iter().map(|r| r.peak).max().unwrap_or(0)
    }

    /// Total bytes allocated across all windows.
    pub fn alloc_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.alloc_bytes).sum()
    }

    /// Total bytes freed across all windows.
    pub fn freed_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.freed_bytes).sum()
    }

    /// Run-wide fraction of freed bytes with an exact stamp.
    pub fn exact_fraction(&self) -> f64 {
        let freed = self.freed_bytes();
        if freed == 0 {
            1.0
        } else {
            self.rows.iter().map(|r| r.exact_bytes).sum::<u64>() as f64 / freed as f64
        }
    }

    /// Cycles started by each cause, `(period, heap)`.
    pub fn cause_tally(&self) -> (u64, u64) {
        let heap = self.rows.iter().filter(|r| r.cause == 1).count() as u64;
        (self.rows.len() as u64 - heap, heap)
    }
}

/// Folds a parsed stream's `hp_*` instants into the per-cycle table.
pub fn heap(events: &[ParsedEvent]) -> HeapReport {
    let mut rows: BTreeMap<u32, HeapRow> = BTreeMap::new();
    for e in events {
        if e.kind != Kind::Instant || !e.name.starts_with("hp_") {
            continue;
        }
        let row = rows.entry(e.cycle).or_default();
        match e.name.as_str() {
            "hp_cause" => row.cause = e.value,
            "hp_bound" => row.bound = e.value,
            "hp_live" => row.live = e.value,
            "hp_peak" => row.peak = e.value,
            "hp_alloc_bytes" => row.alloc_bytes = e.value,
            "hp_freed_bytes" => row.freed_bytes = e.value,
            "hp_allocs" => row.allocs = e.value,
            "hp_frees" => row.frees = e.value,
            "hp_exact_bytes" => row.exact_bytes = e.value,
            _ => {}
        }
    }
    HeapReport {
        rows: rows
            .into_iter()
            .map(|(cycle, mut r)| {
                r.cycle = cycle;
                r
            })
            .collect(),
    }
}

/// Renders the heap table as a plain-text report.
pub fn heap_text(r: &HeapReport) -> String {
    let mut out = String::new();
    if r.rows.is_empty() {
        out.push_str("no hp_* instants — was the run built with the `telemetry` feature?\n");
        return out;
    }
    let (period, pressure) = r.cause_tally();
    out.push_str(&format!(
        "heap pressure over {} cycles ({period} period-triggered, {pressure} heap-triggered): \
         peak {} bytes, {} allocated, {} freed ({:.1}% exact)\n",
        r.rows.len(),
        r.peak(),
        r.alloc_bytes(),
        r.freed_bytes(),
        r.exact_fraction() * 100.0,
    ));
    out.push_str(
        "cycle  cause     bound     live     peak    alloc_b   freed_b  allocs  frees  exact%  press\n",
    );
    for row in &r.rows {
        out.push_str(&format!(
            "{:>5}  {:<6} {:>8} {:>8} {:>8} {:>10} {:>9} {:>7} {:>6}  {:>5.1}  {:>5.2}\n",
            row.cycle,
            row.cause_name(),
            row.bound,
            row.live,
            row.peak,
            row.alloc_bytes,
            row.freed_bytes,
            row.allocs,
            row.frees,
            row.exact_fraction() * 100.0,
            row.pressure(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp(cycle: u32, name: &str, value: u64) -> ParsedEvent {
        ParsedEvent {
            ts_us: 0,
            pe: 0,
            cycle,
            phase: "gc".to_string(),
            kind: Kind::Instant,
            name: name.to_string(),
            value,
            lamport: 0,
        }
    }

    fn one_cycle(cycle: u32, cause: u64, peak: u64) -> Vec<ParsedEvent> {
        vec![
            hp(cycle, "hp_cause", cause),
            hp(cycle, "hp_bound", 1000),
            hp(cycle, "hp_live", peak / 2),
            hp(cycle, "hp_peak", peak),
            hp(cycle, "hp_alloc_bytes", 400),
            hp(cycle, "hp_freed_bytes", 200),
            hp(cycle, "hp_allocs", 10),
            hp(cycle, "hp_frees", 5),
            hp(cycle, "hp_exact_bytes", 200),
        ]
    }

    #[test]
    fn folds_rows_per_cycle_and_totals() {
        let mut ev = one_cycle(1, 0, 800);
        ev.extend(one_cycle(2, 1, 1200));
        let r = heap(&ev);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].cycle, 1);
        assert_eq!(r.rows[0].cause_name(), "period");
        assert_eq!(r.rows[1].cause_name(), "heap");
        assert_eq!(r.peak(), 1200);
        assert_eq!(r.alloc_bytes(), 800);
        assert_eq!(r.freed_bytes(), 400);
        assert!((r.exact_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(r.cause_tally(), (1, 1));
        assert!((r.rows[0].pressure() - 0.8).abs() < 1e-9);
        assert!((r.rows[1].pressure() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn last_value_wins_within_a_cycle() {
        let mut ev = one_cycle(3, 0, 800);
        ev.push(hp(3, "hp_peak", 900));
        let r = heap(&ev);
        assert_eq!(r.rows[0].peak, 900);
    }

    #[test]
    fn empty_stream_renders_the_hint() {
        let text = heap_text(&heap(&[]));
        assert!(text.contains("no hp_* instants"), "{text}");
    }

    #[test]
    fn report_renders_the_table() {
        let mut ev = one_cycle(1, 1, 950);
        ev.extend(one_cycle(2, 0, 700));
        let text = heap_text(&heap(&ev));
        assert!(
            text.contains("1 period-triggered, 1 heap-triggered"),
            "{text}"
        );
        assert!(text.contains("peak 950 bytes"), "{text}");
        assert!(text.contains("heap  "), "{text}");
        assert!(text.contains("period"), "{text}");
    }
}
