//! **dgr** — distributed task and memory management via decentralized
//! concurrent graph marking.
//!
//! A full reproduction of Paul Hudak's *Distributed Task and Memory
//! Management* (PODC 1983): a distributed graph-reduction machine whose
//! garbage collection, deadlock detection, irrelevant-task deletion and
//! dynamic task prioritization are all driven by one decentralized
//! graph-marking algorithm that runs concurrently with mutation.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `dgr-graph` | computation graph, edge sets, free list, reachability oracle |
//! | [`sim`] | `dgr-sim` | deterministic multi-PE simulator and threaded runtime |
//! | [`marking`] | `dgr-core` | `mark1`/`mark2`/`mark3`, cooperating mutators, invariants |
//! | [`reduction`] | `dgr-reduction` | demand-driven + speculative reduction engine |
//! | [`gc`] | `dgr-gc` | the mark-and-restructure cycle (GC, deadlock, task management) |
//! | [`lang`] | `dgr-lang` | mini functional language → supercombinator templates |
//! | [`workloads`] | `dgr-workloads` | graph/program/churn/mutation generators |
//! | [`baseline`] | `dgr-baseline` | reference counting, stop-the-world, non-cooperating marking |
//! | [`telemetry`] | `dgr-telemetry` | zero-dependency metrics, traces, cycle timelines (feature `telemetry`) |
//! | [`observe`] | `dgr-observe` | live plane: `/metrics` exporter, status endpoint, progress watchdog |
//!
//! # Quickstart
//!
//! ```
//! use dgr::prelude::*;
//!
//! // Compile a program, run it with concurrent GC on 4 simulated PEs.
//! let sys = dgr::lang::build_with_prelude(
//!     "sum (map fib (range 1 10))",
//!     SystemConfig::default(),
//! ).unwrap();
//! let mut gc = GcDriver::new(sys, GcConfig::default());
//! assert_eq!(gc.run(), RunOutcome::Value(Value::Int(143)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dgr_baseline as baseline;
pub use dgr_core as marking;
pub use dgr_gc as gc;
pub use dgr_graph as graph;
pub use dgr_lang as lang;
pub use dgr_observe as observe;
pub use dgr_reduction as reduction;
pub use dgr_sim as sim;
pub use dgr_telemetry as telemetry;
pub use dgr_workloads as workloads;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use dgr_gc::{CycleOrder, GcConfig, GcDriver};
    pub use dgr_graph::{
        GraphStore, NodeLabel, PartitionStrategy, PrimOp, Priority, RequestKind, Value, VertexId,
    };
    pub use dgr_lang::{build_system, build_with_prelude, eval_source, eval_with_prelude};
    pub use dgr_reduction::{Builder, RunOutcome, System, SystemConfig, TemplateStore};
    pub use dgr_sim::SchedPolicy;
}
