//! `dgr` — command-line driver for the distributed graph-reduction
//! machine.
//!
//! ```text
//! dgr run  [FLAGS] <file.dgr | -e "expr">   evaluate a program
//! dgr repl [FLAGS]                          interactive loop
//! dgr dot  [FLAGS] <file.dgr | -e "expr">   emit the installed graph as DOT
//!
//! flags:
//!   --pes N            processing elements (default 4)
//!   --seed N           scheduler seed (default 0)
//!   --random           random scheduling policy (default round-robin)
//!   --speculate        evaluate conditional branches eagerly
//!   --no-prelude       do not load the standard prelude
//!   --gc-period N      reduction events between GC cycles (default 250)
//!   --no-gc            run without the collector
//!   --recover          return ⊥ from deadlocked vertices
//!   --stats            print reduction and GC statistics
//! ```

use std::io::{BufRead, Write};

use dgr::gc::{GcConfig, GcDriver};
use dgr::prelude::*;

#[derive(Debug, Clone)]
struct Opts {
    pes: u16,
    seed: u64,
    random: bool,
    speculate: bool,
    prelude: bool,
    gc_period: u64,
    gc: bool,
    recover: bool,
    stats: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            pes: 4,
            seed: 0,
            random: false,
            speculate: false,
            prelude: true,
            gc_period: 250,
            gc: true,
            recover: false,
            stats: false,
        }
    }
}

impl Opts {
    fn system_config(&self) -> SystemConfig {
        SystemConfig {
            num_pes: self.pes,
            seed: self.seed,
            policy: if self.random {
                SchedPolicy::Random { marking_bias: 0.5 }
            } else {
                SchedPolicy::RoundRobin
            },
            speculation: self.speculate,
            ..Default::default()
        }
    }

    fn gc_config(&self) -> GcConfig {
        GcConfig {
            period: self.gc_period,
            deadlock_recovery: self.recover,
            ..Default::default()
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: dgr <run|repl|dot> [--pes N] [--seed N] [--random] [--speculate] \
         [--no-prelude] [--gc-period N] [--no-gc] [--recover] [--stats] \
         [-e EXPR | FILE]"
    );
    std::process::exit(2)
}

fn build(src: &str, opts: &Opts) -> Result<System, dgr::lang::LangError> {
    if opts.prelude {
        dgr::lang::build_with_prelude(src, opts.system_config())
    } else {
        dgr::lang::build_system(src, opts.system_config())
    }
}

fn run_source(src: &str, opts: &Opts) -> i32 {
    let sys = match build(src, opts) {
        Ok(sys) => sys,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if opts.gc {
        let mut gc = GcDriver::new(sys, opts.gc_config());
        let out = gc.run();
        report_outcome(&out);
        if opts.stats {
            let s = &gc.sys.stats;
            eprintln!(
                "tasks: {} requests, {} returns, {} expansions, {} bottoms",
                s.requests, s.returns, s.expansions, s.bottoms
            );
            let g = gc.stats();
            eprintln!(
                "gc: {} cycles ({} with M_T), {} reclaimed, {} tasks expunged, \
                 {} re-laned, {} deadlocked, {} marking events",
                g.cycles,
                g.mt_cycles,
                g.reclaimed_total,
                g.expunged_total,
                g.relaned_total,
                g.deadlocks_total,
                g.mark_events_total
            );
        }
        outcome_code(&out)
    } else {
        let mut sys = sys;
        let out = sys.run();
        report_outcome(&out);
        if opts.stats {
            let s = &sys.stats;
            eprintln!(
                "tasks: {} requests, {} returns, {} expansions, {} bottoms",
                s.requests, s.returns, s.expansions, s.bottoms
            );
        }
        outcome_code(&out)
    }
}

fn report_outcome(out: &RunOutcome) {
    match out {
        RunOutcome::Value(v) => println!("{v}"),
        RunOutcome::Quiescent => println!("(deadlocked: no value)"),
        RunOutcome::Budget => println!("(event budget exhausted)"),
    }
}

fn outcome_code(out: &RunOutcome) -> i32 {
    match out {
        RunOutcome::Value(_) => 0,
        _ => 1,
    }
}

fn emit_dot(src: &str, opts: &Opts) -> i32 {
    match build(src, opts) {
        Ok(sys) => {
            let dot = dgr::graph::dot::to_dot_reachable(
                &sys.graph,
                &dgr::graph::dot::DotOptions::default(),
            );
            print!("{dot}");
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn repl(opts: &Opts) -> i32 {
    eprintln!("dgr repl — distributed graph reduction; empty line or ^D exits");
    let stdin = std::io::stdin();
    loop {
        eprint!("> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return 0,
            Ok(_) => {
                let line = line.trim();
                if line.is_empty() {
                    return 0;
                }
                run_source(line, opts);
            }
            Err(e) => {
                eprintln!("read error: {e}");
                return 1;
            }
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut opts = Opts::default();
    let mut source: Option<String> = None;
    let mut file: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pes" => {
                opts.pes = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--gc-period" => {
                opts.gc_period = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--random" => opts.random = true,
            "--speculate" => opts.speculate = true,
            "--no-prelude" => opts.prelude = false,
            "--no-gc" => opts.gc = false,
            "--recover" => opts.recover = true,
            "--stats" => opts.stats = true,
            "-e" => source = Some(args.next().unwrap_or_else(|| usage())),
            other if !other.starts_with('-') => file = Some(other.to_string()),
            _ => usage(),
        }
    }
    let load = |source: Option<String>, file: Option<String>| -> String {
        if let Some(s) = source {
            return s;
        }
        let Some(f) = file else { usage() };
        match std::fs::read_to_string(&f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {f}: {e}");
                std::process::exit(1);
            }
        }
    };
    let code = match cmd.as_str() {
        "run" => run_source(&load(source, file), &opts),
        "dot" => emit_dot(&load(source, file), &opts),
        "repl" => repl(&opts),
        _ => usage(),
    };
    std::process::exit(code);
}
