//! Watch the marking wave: dumps Graphviz snapshots of a marking pass at
//! several points, showing unmarked (white), transient (gray) and marked
//! (green) vertices — Dijkstra's colors, distributed.
//!
//! Run with: `cargo run --example visualize_marking`
//! Then:     `dot -Tsvg wave_2.dot > wave_2.svg` (if graphviz is installed)

use dgr::graph::dot::{to_dot, DotOptions};
use dgr::graph::{MarkParent, PartitionMap, PartitionStrategy, Slot};
use dgr::marking::driver::{reset_slot, route};
use dgr::marking::{handle_mark, MarkMsg, MarkState, RMode};
use dgr::prelude::*;
use dgr::sim::DetSim;

fn main() {
    // A small diamond-rich graph.
    let mut g = GraphStore::new();
    let mut b = dgr::reduction::Builder::new(&mut g);
    let leaves: Vec<_> = (0..4).map(|i| b.int(i)).collect();
    let l0 = b.prim2(PrimOp::Add, leaves[0], leaves[1]);
    let l1 = b.prim2(PrimOp::Add, leaves[1], leaves[2]);
    let l2 = b.prim2(PrimOp::Add, leaves[2], leaves[3]);
    let m0 = b.prim2(PrimOp::Mul, l0, l1);
    let m1 = b.prim2(PrimOp::Mul, l1, l2);
    let root = b.prim2(PrimOp::Add, m0, m1);
    g.set_root(root);

    reset_slot(&mut g, Slot::R);
    let partition = PartitionMap::new(3, g.capacity(), PartitionStrategy::Modulo);
    let mut sim: DetSim<MarkMsg> = DetSim::new(3, SchedPolicy::Fifo, 0);
    let mut state = MarkState::new();
    state.begin_r(RMode::Simple);
    sim.send(route(
        &partition,
        MarkMsg::Mark1 {
            v: root,
            par: MarkParent::RootPar,
        },
    ));

    let mut snapshots = 0;
    let mut events = 0;
    let mut buf = Vec::new();
    let opts = DotOptions::default();
    while let Some((_pe, _lane, msg)) = sim.next_event() {
        handle_mark(&mut state, &mut g, msg, &mut |m| buf.push(m));
        for m in buf.drain(..) {
            sim.send(route(&partition, m));
        }
        events += 1;
        if events % 5 == 0 || sim.is_empty() {
            let path = format!("wave_{snapshots}.dot");
            std::fs::write(&path, to_dot(&g, &opts)).expect("write snapshot");
            println!("event {events:>3}: wrote {path}");
            snapshots += 1;
        }
    }
    assert!(state.r_done);
    println!(
        "\nmarking complete in {events} events; render the snapshots with\n  for f in wave_*.dot; do dot -Tsvg $f > ${{f%.dot}}.svg; done"
    );
}
