//! Figure 3-1: the deadlocked computation `x = x + 1`.
//!
//! A vertex that (transitively) awaits its own value deadlocks: it is
//! reachable from the root through vitally-requested arcs (`R_v`) but no
//! task can ever propagate to it (`∉ T`), so `DL_v = R_v − T` catches it.
//! The example shows detection by the `M_T`-then-`M_R` cycle and the
//! optional recovery that returns `⊥` (footnote 5's `is-bottom`).
//!
//! Run with: `cargo run --example deadlock_detection`

use dgr::gc::{GcConfig, GcDriver};
use dgr::prelude::*;

fn drive(recovery: bool) {
    // `let rec x = x + 1 in x` — the exact graph of Figure 3-1, built
    // from source through the compiler.
    let sys = dgr::lang::build_system("let rec x = x + 1 in x", SystemConfig::default())
        .expect("program compiles");
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            deadlock_recovery: recovery,
            ..Default::default()
        },
    );
    let out = gc.run();
    println!(
        "recovery {}: outcome = {out:?}, deadlocked vertices found = {:?}",
        if recovery { "on " } else { "off" },
        gc.last_report().deadlocked
    );
    if recovery {
        assert_eq!(out, RunOutcome::Value(Value::Bottom));
    } else {
        assert_eq!(out, RunOutcome::Quiescent);
        assert!(!gc.last_report().deadlocked.is_empty());
    }
}

fn main() {
    println!("Figure 3-1: x = x + 1");
    drive(false);
    drive(true);

    // A deadlocked *subcomputation* need not poison everything demanded
    // later — with recovery, the ⊥ propagates exactly as far as
    // strictness requires (here: the whole sum is ⊥), and a multi-user
    // system would keep serving other programs.
    let sys = dgr::lang::build_system(
        "let rec a = b + 1; b = a + 1 in a + 100",
        SystemConfig::default(),
    )
    .expect("program compiles");
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            deadlock_recovery: true,
            ..Default::default()
        },
    );
    let out = gc.run();
    println!("mutual deadlock a = b + 1; b = a + 1: a + 100 = {out:?}");
    assert_eq!(out, RunOutcome::Value(Value::Bottom));
}
