//! A tiny interpreter driver: evaluate programs from the command line (or
//! a built-in demo suite) on the distributed reduction machine.
//!
//! Run with:
//! `cargo run --example interpreter -- "sum (map fib (range 1 10))"`
//! or with no argument for the demo suite.

use dgr::gc::{GcConfig, GcDriver};
use dgr::prelude::*;

fn run_one(src: &str) {
    println!("> {}", src.trim());
    let sys = match dgr::lang::build_with_prelude(src, SystemConfig::default()) {
        Ok(sys) => sys,
        Err(e) => {
            println!("  error: {e}");
            return;
        }
    };
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 250,
            deadlock_recovery: true,
            ..Default::default()
        },
    );
    let out = gc.run();
    match out {
        RunOutcome::Value(v) => println!("  = {v}"),
        RunOutcome::Quiescent => println!("  (no value: the computation deadlocked)"),
        RunOutcome::Budget => println!("  (event budget exhausted)"),
    }
    println!(
        "  [{} tasks, {} expansions, {} GC cycles, {} vertices reclaimed]",
        gc.sys.stats.total_tasks(),
        gc.sys.stats.expansions,
        gc.stats().cycles,
        gc.stats().reclaimed_total
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        run_one(&args.join(" "));
        return;
    }
    for src in [
        "2 + 2",
        "fact 12",
        "fib 16",
        "sum (map (\\x -> x * x) (range 1 10))",
        "length (filter even (range 1 100))",
        "let rec qsort = \\xs -> if isnil xs then nil
                          else append (qsort (filter (\\y -> y < head xs) (tail xs)))
                                      (cons (head xs)
                                            (qsort (filter (\\y -> y >= head xs) (tail xs))))
         in nth 3 (qsort [5, 1, 9, 3, 7])",
        "head (tail (let rec ones = cons 1 ones in ones))",
        "sum (take 10 (nats 100))",
        "gcd 1071 462",
        "let rec x = x + 1 in x",
    ] {
        run_one(src);
    }
}
