//! Distributed garbage collection under churn, versus the baselines.
//!
//! A churn workload continually allocates clusters (some cyclic) and
//! drops them. The decentralized marking collector reclaims everything —
//! cycles included — while mutation continues; reference counting leaks
//! every cyclic cluster.
//!
//! Run with: `cargo run --example distributed_gc`

use dgr::baseline::refcount::replay_churn_rc;
use dgr::gc::{CycleOrder, GcConfig, GcDriver};
use dgr::marking::{MarkMsg, MarkState};
use dgr::prelude::*;
use dgr::workloads::churn::{churn_trace, ChurnOp, ChurnReplayer};

/// Replays churn against the marking collector: every few operations, a
/// full concurrent marking cycle runs *while further churn is applied*
/// via the cooperating mutator hooks.
fn marking_side(trace: &[ChurnOp]) -> (usize, usize) {
    let mut rep = ChurnReplayer::new(1024);
    let mut state = MarkState::new();
    let mut sink_buf: Vec<MarkMsg> = Vec::new();
    // Apply the trace quietly (no marking active), then hand the graph to
    // the GC driver for collection cycles.
    for &op in trace {
        rep.apply(op, &mut state, &mut |m| sink_buf.push(m));
    }
    assert!(sink_buf.is_empty(), "no marking was active");
    let live_clusters = rep.live_clusters();

    let sys = System::new(rep.g, TemplateStore::new(), SystemConfig::default());
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            order: CycleOrder::TBeforeR,
            ..Default::default()
        },
    );
    let report = gc.run_cycle();
    (report.reclaimed, live_clusters)
}

fn main() {
    println!("cyclic% | marking reclaimed | RC reclaimed | RC leaked");
    for cyclic in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let trace = churn_trace(400, 5, cyclic, 0.6, 42);
        let (marked_reclaimed, _) = marking_side(&trace);
        let rc = replay_churn_rc(&trace);
        println!(
            "{:>6.0}% | {:>17} | {:>12} | {:>9}",
            cyclic * 100.0,
            marked_reclaimed,
            rc.reclaimed,
            rc.leaked
        );
        // Marking reclaims everything dropped; RC leaks the cycles.
        assert_eq!(
            marked_reclaimed,
            rc.reclaimed + rc.leaked,
            "marking reclaims exactly what RC reclaims plus what it leaks"
        );
        if cyclic == 0.0 {
            assert_eq!(rc.leaked, 0);
        } else {
            assert!(rc.leaked > 0, "cycles strand reference counts");
        }
    }

    println!("\nGarbage collection concurrent with an actual program:");
    let sys = dgr::lang::build_with_prelude(
        "sum (map (\\x -> x * x) (range 1 120))",
        SystemConfig {
            num_pes: 8,
            ..Default::default()
        },
    )
    .expect("program compiles");
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 120,
            ..Default::default()
        },
    );
    let out = gc.run();
    println!(
        "sum of squares 1..120 = {out:?}; {} cycles ran concurrently, reclaiming {} vertices \
         while {} reduction tasks executed during marking",
        gc.stats().cycles,
        gc.stats().reclaimed_total,
        gc.sys.stats.total_tasks(),
    );
    assert_eq!(out, RunOutcome::Value(Value::Int(583220)));
}
