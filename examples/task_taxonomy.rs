//! Figure 3-2: vital, eager, irrelevant and reserve tasks.
//!
//! Under speculative evaluation, conditionals demand their branches
//! eagerly. When a predicate resolves, the chosen branch's tasks become
//! vital (priority upgrade), the other branch is dereferenced and its
//! in-flight workload becomes *irrelevant* — unless another vertex still
//! holds an unrequested arc to it, in which case the tasks are *reserve*.
//! Each GC cycle classifies every pending task (Properties 3–6), expunges
//! the irrelevant ones, and re-lanes the rest.
//!
//! Run with: `cargo run --example task_taxonomy`

use dgr::gc::{classify_pending_tasks, GcConfig, GcDriver};
use dgr::prelude::*;

fn main() {
    // The spirit of Figure 3-2: a speculative conditional whose predicate
    // resolves to true, discarding an expensive speculated branch that
    // has already spread work through the system.
    // The predicate is expensive (nfib 8 > 0), so both branches run
    // speculatively (eager) for a while; once it resolves to true the
    // spin branch's workload turns irrelevant.
    let src = "
        let rec spin = \\n -> if n == 0 then 0 else spin (n - 1) + nfib 6
        in if nfib 8 > 0 then 1 + nfib 8 else spin 1000
    ";
    let cfg = SystemConfig {
        speculation: true,
        ..Default::default()
    };
    let sys = dgr::lang::build_with_prelude(src, cfg).expect("program compiles");
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 150,
            expunge: false, // watch the taxonomy first, expunge later
            reclaim: false,
            ..Default::default()
        },
    );

    gc.sys.demand_root();
    println!("cycle |  vital  eager  reserve  irrelevant | pending");
    for cycle in 1..=8 {
        for _ in 0..150 {
            if !gc.sys.step() {
                break;
            }
        }
        gc.run_cycle();
        let c = classify_pending_tasks(&gc.sys);
        println!(
            "{cycle:>5} | {:>6} {:>6} {:>8} {:>11} | {:>7}",
            c.vital,
            c.eager,
            c.reserve,
            c.irrelevant,
            gc.sys.sim().len()
        );
        if gc.sys.result.is_some() {
            break;
        }
    }

    // Now with full restructuring on: irrelevant tasks are expunged and
    // the program converges to its value.
    let sys = dgr::lang::build_with_prelude(
        src,
        SystemConfig {
            speculation: true,
            ..Default::default()
        },
    )
    .expect("program compiles");
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 150,
            ..Default::default()
        },
    );
    let out = gc.run();
    println!(
        "\nwith expunging: {out:?} after {} cycles, {} irrelevant tasks expunged, {} upgrades",
        gc.stats().cycles,
        gc.stats().expunged_total,
        gc.sys.stats.upgrades
    );
    assert_eq!(out, RunOutcome::Value(Value::Int(68)));
}
