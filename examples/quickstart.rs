//! Quickstart: build an expression graph, partition it over simulated
//! PEs, reduce it demand-driven, and collect garbage concurrently.
//!
//! Run with: `cargo run --example quickstart`

use dgr::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Build a computation graph by hand: (1 + 2) * (10 - 4).
    // ------------------------------------------------------------------
    let mut g = GraphStore::new();
    let mut b = Builder::new(&mut g);
    let one = b.int(1);
    let two = b.int(2);
    let sum = b.prim2(PrimOp::Add, one, two);
    let ten = b.int(10);
    let four = b.int(4);
    let diff = b.prim2(PrimOp::Sub, ten, four);
    let root = b.prim2(PrimOp::Mul, sum, diff);
    g.set_root(root);

    // ------------------------------------------------------------------
    // 2. Reduce it on 4 simulated PEs (tasks propagate between vertices,
    //    crossing partition boundaries as messages).
    // ------------------------------------------------------------------
    let cfg = SystemConfig {
        num_pes: 4,
        ..Default::default()
    };
    let mut sys = System::new(g, TemplateStore::new(), cfg);
    let out = sys.run();
    println!("(1 + 2) * (10 - 4) = {out:?}");
    println!(
        "tasks executed: {} requests, {} returns",
        sys.stats.requests, sys.stats.returns
    );

    // ------------------------------------------------------------------
    // 3. The same thing from source text, with concurrent GC: the
    //    mark-and-restructure cycle runs interleaved with reduction and
    //    reclaims exhausted subcomputations while the program runs.
    // ------------------------------------------------------------------
    let sys = dgr::lang::build_with_prelude(
        "let rec sumto = \\n -> if n == 0 then 0 else n + sumto (n - 1) in sumto 200",
        SystemConfig::default(),
    )
    .expect("program compiles");
    let mut gc = GcDriver::new(
        sys,
        GcConfig {
            period: 100,
            ..Default::default()
        },
    );
    let out = gc.run();
    println!("sumto 200 = {out:?}");
    println!(
        "GC: {} cycles, {} vertices reclaimed, {} marking events (max {} per cycle)",
        gc.stats().cycles,
        gc.stats().reclaimed_total,
        gc.stats().mark_events_total,
        gc.stats().max_cycle_mark_events,
    );
    assert_eq!(out, RunOutcome::Value(Value::Int(20100)));
}
