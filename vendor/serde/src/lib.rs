//! Offline stub of `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names (trait and derive-macro
//! namespaces) that the workspace's `#[derive(...)]` attributes and `use
//! serde::{Deserialize, Serialize}` imports refer to. The derives are
//! no-ops; the traits are empty markers. Nothing in this repository
//! serializes through serde — JSON emitted by the bench reports is written
//! by hand (see `dgr-bench`).

pub use serde_derive::{Deserialize, Serialize};

/// Empty marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Empty marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
