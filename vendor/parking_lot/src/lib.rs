//! Offline stub of `parking_lot`, exposing the `Mutex`/`MutexGuard` pair
//! this workspace uses. Backed by `std::sync::Mutex`; like the real
//! parking_lot, `lock()` never returns a poison error — a mutex poisoned by
//! a panicking holder is simply re-entered.

use std::fmt;
use std::sync::Mutex as StdMutex;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Poison-free mutex with the parking_lot API shape.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Ignores
    /// poisoning, matching parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }
}
