//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes data — the `#[derive(Serialize,
//! Deserialize)]` attributes exist so types stay serde-ready. These no-op
//! derives keep those attributes compiling without pulling in the real
//! implementation.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts the input, emits nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts the input, emits nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
