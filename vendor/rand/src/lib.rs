//! Offline stub of `rand` 0.8, covering the API surface this workspace
//! uses: `StdRng::seed_from_u64`, `gen`, `gen_bool`, `gen_range` over
//! half-open and inclusive integer ranges, and `f64` sampling.
//!
//! The generator is xoshiro256** seeded through splitmix64 — high-quality,
//! fast, and fully deterministic per seed. The stream differs from the real
//! `StdRng` (ChaCha12); every consumer in this repo only relies on
//! *same-seed reproducibility*, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (subset of `rand::Rng`).
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform over the type's range; `f64`
    /// samples uniformly in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self.next_u64()) < p
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types samplable by [`Rng::gen`] (stand-in for `rand::distributions::Standard`).
pub trait Standard {
    /// Derives a value from 64 random bits.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn sample(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> Self {
        bits >> 63 == 1
    }
}

impl Standard for u8 {
    fn sample(bits: u64) -> Self {
        (bits >> 56) as u8
    }
}

impl Standard for i8 {
    fn sample(bits: u64) -> Self {
        (bits >> 56) as i8
    }
}

/// Ranges samplable by [`Rng::gen_range`] (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-free) uniform integer in `[0, n)` using
/// Lemire's widening-multiply method with rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (n as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (s as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (offline stand-in for the real
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed ^ 0xD1B5_4A32_D192_ED03;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0u32..=5);
            assert!(y <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let p: f64 = r.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
