//! Offline stub of `proptest`, covering the API surface this workspace's
//! property tests use: the `proptest!` / `prop_assert*` / `prop_oneof!`
//! macros, `Strategy` with `prop_map` / `prop_flat_map` / `prop_recursive`,
//! `Just`, `any`, numeric-range and tuple strategies, string-pattern
//! strategies, and `proptest::collection::vec`.
//!
//! Semantics: each test runs `ProptestConfig::cases` iterations with inputs
//! drawn from a deterministic per-test RNG (seeded from the test name and
//! case index), and reports the generated inputs on failure. There is no
//! shrinking and no persisted failure file — a failing case prints its
//! inputs and panics, which is enough to reproduce (the stream is stable
//! across runs).

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic splitmix64 stream used to drive generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Seeds the stream; the same seed always yields the same inputs.
    pub fn new(seed: u64) -> Self {
        TestRng {
            x: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample from an empty range");
        // Widening multiply; the bias at these n is far below anything a
        // property test could observe.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Failure raised by `prop_assert*`; carried out of the test body as an
/// `Err` so remaining cleanup still runs before the harness panics.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable description of the failed assertion.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// Per-block configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` iterations per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Generates random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }

    /// Builds recursive values: `f` receives the strategy for one level
    /// shallower and returns the strategy for composite nodes. `depth`
    /// bounds recursion; `_desired_size` and `_expected_branch_size` are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = f(strat).boxed();
            let leaf = base.clone();
            // At each level, fall back to a leaf 1 time in 3 so generated
            // trees vary in depth instead of always being full.
            strat = BoxedStrategy {
                gen: Rc::new(move |rng: &mut TestRng| {
                    if rng.below(3) == 0 {
                        leaf.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }),
            };
        }
        strat
    }
}

/// Cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

impl<T: Debug> BoxedStrategy<T> {
    /// Uniform choice among `arms` (backs the `prop_oneof!` macro).
    pub fn union(arms: Vec<BoxedStrategy<T>>) -> Self
    where
        T: 'static,
    {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy {
            gen: Rc::new(move |rng: &mut TestRng| {
                let i = rng.below(arms.len() as u64) as usize;
                arms[i].generate(rng)
            }),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy over the whole domain of `T`.
#[derive(Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T` (e.g. `any::<i8>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Pattern strategies: the pattern's repetition bound `{lo,hi}` (if
/// present, else 0..=32) sets the length; characters are drawn from
/// printable ASCII plus a few multi-byte code points. The character class
/// itself is not interpreted — every caller in this workspace uses `\PC`
/// (any printable), which this matches.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 32));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        const EXTRA: [char; 8] = ['λ', '⊥', 'é', '→', '∀', '𝔽', '中', '�'];
        (0..len)
            .map(|_| {
                let r = rng.next_u64();
                if r.is_multiple_of(8) {
                    EXTRA[(r >> 8) as usize % EXTRA.len()]
                } else {
                    char::from(0x20 + (r >> 8) as u8 % 0x5F) // printable ASCII
                }
            })
            .collect()
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern[open..].find('}')? + open;
    let body = &pattern[open + 1..close];
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `len` is half-open, matching the call sites here.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything the property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// FNV-1a over the test name: gives each test its own input stream.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng =
                        $crate::TestRng::new($crate::seed_for(stringify!($name), case));
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )+
                    let desc = [
                        $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+
                    ]
                    .join(", ");
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {} failed: {}\n  inputs: {}",
                            case, e.message, desc
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the generated inputs) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assert_eq failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assert_ne failed: both {:?}: {}",
            l,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategy arms that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::BoxedStrategy::union(vec![
            $($crate::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(xs in proptest::collection::vec((0u16..4, 0u8..5), 1..50), k in 2u32..5) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            for &(pe, tag) in &xs {
                prop_assert!(pe < 4 && tag < 5);
            }
            prop_assert!((2..5).contains(&k));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), (3u8..7).prop_map(|x| x)]) {
            prop_assert!(v == 1 || (3..7).contains(&v));
        }

        #[test]
        fn strings_bounded(s in "\\PC{0,120}") {
            prop_assert!(s.chars().count() <= 120);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #[test]
        fn recursive_trees_bounded(t in any::<i8>().prop_map(Tree::Leaf).prop_recursive(
            4, 32, 2,
            |inner| (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(a.into(), b.into())),
        )) {
            prop_assert!(depth(&t) <= 4, "depth {} exceeds bound", depth(&t));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::new(crate::seed_for("x", 3));
        let mut b = TestRng::new(crate::seed_for("x", 3));
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
