//! Offline stub of `crossbeam`, exposing the `channel` module surface this
//! workspace uses (`unbounded`, `Sender`, `Receiver`). Backed by
//! `std::sync::mpsc`, whose `Sender` has been `Sync` since Rust 1.72, so it
//! can be shared across scoped threads exactly like crossbeam's.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug)]
    pub struct RecvError;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; fails when the channel is empty and
        /// every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn cross_thread_send() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                let tx2 = tx.clone();
                scope.spawn(move || tx2.send(5).unwrap());
                scope.spawn(|| tx.send(7).unwrap());
                let a = rx.recv().unwrap();
                let b = rx.recv().unwrap();
                assert_eq!(a + b, 12);
            });
        }
    }
}
