//! Offline stub of `criterion`, covering the API surface the `dgr-bench`
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! No statistics, plots, or warm-up model — each benchmark runs
//! `sample_size` timed iterations and prints min/mean wall time. That is
//! enough for `cargo bench` to compile, run, and give a usable relative
//! signal; the paper-facing numbers come from the `report_*` binaries,
//! which do their own timing.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; the stub runs one setup per
/// iteration regardless of variant.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One setup per small batch.
    SmallInput,
    /// One setup per iteration.
    LargeInput,
}

/// Identifier combining a function name and a parameter, e.g. `mark1/1000`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id for single-function groups.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.timings.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on a fresh `setup()` value each sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.timings.push(start.elapsed());
            drop(out);
        }
    }
}

fn report(id: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let min = timings.iter().min().unwrap();
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    println!(
        "{id:<40} min {:>10.1?}  mean {:>10.1?}  ({} samples)",
        min,
        mean,
        timings.len()
    );
}

/// Group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            timings: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.timings);
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.full.clone(), |b| f(b, input));
        self
    }

    /// Ends the group (marker only in the stub).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            timings: Vec::new(),
        };
        f(&mut b);
        report(id, &b.timings);
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
